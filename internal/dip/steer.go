package dip

import (
	"repro/internal/bpred"
	"repro/internal/deadness"
	"repro/internal/trace"
)

// steer is the FlavorSteer evaluator: a per-PC binary predictor over
// *ineffectuality* outcomes, reusing the bpred direction-predictor
// machinery with "taken" meaning "this instance was ineffectual". It is
// the trace-level model of the two-cluster pipeline's steering stage: an
// instruction predicted ineffectual is routed to the narrow degraded
// cluster, so coverage measures how much ineffectual work gets steered
// away and accuracy how much effectual work is wrongly degraded.
//
// Unlike deadness — which resolves only when the value is overwritten or
// read — ineffectuality is observable the moment the instruction commits
// (the store wrote the bytes it replaced; the result equalled an input),
// so the predictor trains immediately, with no resolve-time pending list.
type steer struct {
	dirName string
}

func newSteer(s Spec) (Predictor, error) { return steer{dirName: s.Dir}, nil }

func (p steer) Evaluate(t *trace.Trace, a *deadness.Analysis) (Result, error) {
	dir, err := bpred.NewDirByName(p.dirName)
	if err != nil {
		return Result{}, err
	}
	res := Result{Name: "steer+" + dir.Name(), StateBits: dir.StateBits()}
	correct := 0
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.Chunk(ci)
		base := ci << trace.ChunkBits
		for i := 0; i < c.Len(); i++ {
			seq := base + i
			if !a.Candidate[seq] {
				continue
			}
			ineff := a.Ineff[seq].Ineffectual()
			pc := int(c.PC[i])
			pred := dir.Predict(pc)
			dir.Update(pc, ineff)
			res.Candidates++
			if ineff {
				res.Dead++
			}
			if pred {
				res.Predicted++
				if ineff {
					res.TruePos++
				}
			}
			if pred == ineff {
				correct++
			}
		}
	}
	// For the steering flavor the underlying predictor *is* the table, so
	// BranchAccuracy reports its overall (both-class) hit rate.
	if res.Candidates > 0 {
		res.BranchAccuracy = float64(correct) / float64(res.Candidates)
	}
	return res, nil
}
