package trace

import (
	"math/rand"
	"testing"
)

// TestByteWritersRandomizedVsReference drives the shard-boundary export
// (ByteWriters) over randomized unaligned/overlapping store sequences and
// checks every byte against the per-byte reference map, including the
// all-claimed verdict the sharded analyzer keys off.
func TestByteWritersRandomizedVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		wm := NewWriterMap()
		ref := refWriterMap{}
		for seq, op := range randomOps(rng, 300) {
			if op.store {
				wm.Claim(op.addr, op.width, int32(seq))
				ref.set(op.addr, op.width, int32(seq))
				continue
			}
			var bw [8]int32
			covered := wm.ByteWriters(op.addr, op.width, &bw)
			all := true
			for b := 0; b < op.width; b++ {
				want := ref.get(op.addr + uint64(b))
				if bw[b] != want {
					t.Fatalf("trial %d seq %d: ByteWriters(%#x,%d)[%d] = %d, want %d",
						trial, seq, op.addr, op.width, b, bw[b], want)
				}
				if want == NoProducer {
					all = false
				}
			}
			if covered != all {
				t.Fatalf("trial %d seq %d: ByteWriters(%#x,%d) covered=%v, want %v",
					trial, seq, op.addr, op.width, covered, all)
			}
		}
		wm.Reset()
	}
}

// TestMergeIntoRandomizedVsReference splits a random store sequence at an
// arbitrary point, plays the prefix into dst and the suffix into src, and
// checks that src.MergeInto(dst) equals playing the whole sequence into
// one map — the exact contract the shard reconciliation's prefix merge
// depends on (later shard's writers overwrite earlier ones byte by byte,
// unclaimed bytes leave the prefix intact).
func TestMergeIntoRandomizedVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		ops := randomOps(rng, 200)
		cut := rng.Intn(len(ops) + 1)

		dst, src := NewWriterMap(), NewWriterMap()
		ref := refWriterMap{}
		for seq, op := range ops {
			w := int(op.width)
			if !op.store {
				w = 1 // loads don't matter here; claim a byte to vary masks
			}
			m := dst
			if seq >= cut {
				m = src
			}
			m.Claim(op.addr, w, int32(seq))
			ref.set(op.addr, w, int32(seq))
		}
		src.MergeInto(dst)

		// Check every byte the sequence could have touched (window from
		// randomOps plus width slack on both sides).
		base := uint64(wpageSize - 64)
		for a := base - 8; a < base+176; a++ {
			if got, want := dst.Get(a), ref.get(a); got != want {
				t.Fatalf("trial %d cut %d: merged Get(%#x) = %d, want %d",
					trial, cut, a, got, want)
			}
		}
		dst.Reset()
		src.Reset()
	}
}

// TestMergeIntoEmptySrc pins the trivial cases: merging an empty map is a
// no-op, and merging into an empty map copies the source exactly.
func TestMergeIntoEmptySrc(t *testing.T) {
	dst := NewWriterMap()
	dst.Claim(0x100, 8, 5)
	NewWriterMap().MergeInto(dst)
	if got := dst.Get(0x100); got != 5 {
		t.Errorf("empty merge clobbered writer: Get(0x100) = %d, want 5", got)
	}

	src := NewWriterMap()
	src.Claim(0x40, 8, 9)
	src.Set(0x13, 11) // partial word via the overflow array
	empty := NewWriterMap()
	src.MergeInto(empty)
	if got := empty.Get(0x44); got != 9 {
		t.Errorf("merge into empty: Get(0x44) = %d, want 9", got)
	}
	if got := empty.Get(0x13); got != 11 {
		t.Errorf("merge into empty: Get(0x13) = %d, want 11", got)
	}
	if got := empty.Get(0x12); got != NoProducer {
		t.Errorf("merge invented writer %d at unclaimed 0x12", got)
	}
}
