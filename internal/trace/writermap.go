package trace

import "sync"

// WriterMap tracks the most recent dynamic writer (a sequence number) of
// every memory byte, using page-grained storage so the per-byte bookkeeping
// of the linker and the deadness oracle stays fast on multi-million-
// instruction traces.
//
// Within a page the tracking is word-granular: each aligned 8-byte word
// records one covering writer plus a byte mask selecting which of its bytes
// that writer owns. The common case — an aligned doubleword store later
// read by an aligned load — touches one slot instead of eight. Bytes
// claimed by partial or unaligned stores spill into a per-byte overflow
// array allocated on first use. Pages are recycled through a sync.Pool
// (see Reset), so repeated link/analyze runs in one process reuse pages
// instead of reallocating and re-initializing them.
type WriterMap struct {
	pages map[uint64]*writerPage
	// One-entry lookup cache: traces are strongly page-local, so most
	// consecutive memory operations hit the same page and skip the map.
	lastKey uint64
	lastPg  *writerPage
}

const wpageBits = 12
const wpageSize = 1 << wpageBits // bytes per page
const wpageWords = wpageSize / 8 // aligned 8-byte words per page

// fullMask marks every byte of a word as covered by the word writer.
const fullMask = 0xff

type writerPage struct {
	// word[w] wrote the bytes of word w whose bit in mask[w] is set; a
	// byte with a clear bit reads from the overflow array instead. A
	// fresh (or scrubbed) page has every mask full and every word writer
	// NoProducer, so the overflow array never needs scrubbing: its stale
	// entries are unreachable until a partial store re-claims the byte.
	word [wpageWords]int32
	mask [wpageWords]uint8
	// bytes holds per-byte writers for partially-claimed words; nil until
	// the first unaligned or sub-word store touches the page.
	bytes *[wpageSize]int32
}

// scrub restores the page to the empty state (every byte NoProducer).
func (p *writerPage) scrub() {
	for i := range p.word {
		p.word[i] = NoProducer
	}
	for i := range p.mask {
		p.mask[i] = fullMask
	}
}

var pagePool = sync.Pool{
	New: func() any {
		p := new(writerPage)
		p.scrub()
		return p
	},
}

// NewWriterMap creates an empty map; every byte reads NoProducer.
func NewWriterMap() *WriterMap {
	return &WriterMap{pages: make(map[uint64]*writerPage, 64)}
}

// Reset empties the map and returns its pages to the shared pool so a
// later link or analysis run (this map or another) can reuse them.
func (w *WriterMap) Reset() {
	for key, pg := range w.pages {
		pg.scrub()
		pagePool.Put(pg)
		delete(w.pages, key)
	}
	w.lastPg = nil
}

// lookup returns the page for key, or nil without creating it.
func (w *WriterMap) lookup(key uint64) *writerPage {
	if w.lastPg != nil && w.lastKey == key {
		return w.lastPg
	}
	pg := w.pages[key]
	if pg != nil {
		w.lastKey, w.lastPg = key, pg
	}
	return pg
}

func (w *WriterMap) page(key uint64) *writerPage {
	if pg := w.lookup(key); pg != nil {
		return pg
	}
	pg := pagePool.Get().(*writerPage)
	w.pages[key] = pg
	w.lastKey, w.lastPg = key, pg
	return pg
}

// Get returns the last writer of addr, or NoProducer.
func (w *WriterMap) Get(addr uint64) int32 {
	pg := w.lookup(addr >> wpageBits)
	if pg == nil {
		return NoProducer
	}
	off := addr & (wpageSize - 1)
	if pg.mask[off>>3]&(1<<(off&7)) != 0 {
		return pg.word[off>>3]
	}
	if pg.bytes == nil {
		return NoProducer
	}
	return pg.bytes[off]
}

// Set records seq as the last writer of the single byte at addr.
func (w *WriterMap) Set(addr uint64, seq int32) {
	pg := w.page(addr >> wpageBits)
	pg.setByte(addr&(wpageSize-1), seq)
}

// setByte claims one byte for seq, demoting it out of the word writer's
// coverage into the overflow array.
func (p *writerPage) setByte(off uint64, seq int32) {
	if p.bytes == nil {
		p.bytes = new([wpageSize]int32)
	}
	p.bytes[off] = seq
	p.mask[off>>3] &^= 1 << (off & 7)
}

// getByte returns the writer of one byte.
func (p *writerPage) getByte(off uint64) int32 {
	if p.mask[off>>3]&(1<<(off&7)) != 0 {
		return p.word[off>>3]
	}
	if p.bytes == nil {
		return NoProducer
	}
	return p.bytes[off]
}

// aligned reports whether [addr, addr+width) is exactly one aligned
// 8-byte word.
func aligned(addr uint64, width int) bool {
	return width == 8 && addr&7 == 0
}

// Claim records seq as the writer of every byte in [addr, addr+width)
// without collecting the previous writers (the linker's store path).
func (w *WriterMap) Claim(addr uint64, width int, seq int32) {
	if aligned(addr, width) {
		pg := w.page(addr >> wpageBits)
		wi := (addr & (wpageSize - 1)) >> 3
		pg.word[wi] = seq
		pg.mask[wi] = fullMask
		return
	}
	for width > 0 {
		pg := w.page(addr >> wpageBits)
		off := addr & (wpageSize - 1)
		n := uint64(width)
		if off+n > wpageSize {
			n = wpageSize - off
		}
		for b := uint64(0); b < n; b++ {
			pg.setByte(off+b, seq)
		}
		addr += n
		width -= int(n)
	}
}

// Overwrite records seq as the writer of [addr, addr+width) and appends
// the previous writers of the span, in byte order and skipping
// NoProducer, to prev (the oracle's store path: each returned writer is a
// store whose bytes this one overwrote). The full-word fast path reports
// a single covering writer once instead of eight times; callers must not
// rely on per-byte multiplicity, only on the set of writers.
func (w *WriterMap) Overwrite(addr uint64, width int, seq int32, prev []int32) []int32 {
	if aligned(addr, width) {
		pg := w.page(addr >> wpageBits)
		wi := (addr & (wpageSize - 1)) >> 3
		if pg.mask[wi] == fullMask {
			if p := pg.word[wi]; p != NoProducer {
				prev = append(prev, p)
			}
		} else {
			for b := uint64(0); b < 8; b++ {
				if p := pg.getByte(wi<<3 + b); p != NoProducer {
					prev = append(prev, p)
				}
			}
		}
		pg.word[wi] = seq
		pg.mask[wi] = fullMask
		return prev
	}
	for width > 0 {
		pg := w.page(addr >> wpageBits)
		off := addr & (wpageSize - 1)
		n := uint64(width)
		if off+n > wpageSize {
			n = wpageSize - off
		}
		for b := uint64(0); b < n; b++ {
			if p := pg.getByte(off + b); p != NoProducer {
				prev = append(prev, p)
			}
			pg.setByte(off+b, seq)
		}
		addr += n
		width -= int(n)
	}
	return prev
}

// ByteWriters fills out[0:width] with the per-byte last writers of
// [addr, addr+width) (NoProducer for unclaimed bytes) and reports whether
// every byte has a writer. Sharded analysis uses it to split a memory
// access into its locally-resolved bytes and the bytes that need the
// prefix state of earlier shards.
func (w *WriterMap) ByteWriters(addr uint64, width int, out *[8]int32) bool {
	// Fast path: an aligned access to a fully word-covered span reads one
	// slot; a missing page means every byte is unclaimed.
	if aligned(addr, width) {
		pg := w.lookup(addr >> wpageBits)
		if pg == nil {
			for b := 0; b < width; b++ {
				out[b] = NoProducer
			}
			return false
		}
		wi := (addr & (wpageSize - 1)) >> 3
		if pg.mask[wi] == fullMask {
			p := pg.word[wi]
			for b := 0; b < width; b++ {
				out[b] = p
			}
			return p != NoProducer
		}
	}
	all := true
	for b := 0; b < width; b++ {
		a := addr + uint64(b)
		var p int32 = NoProducer
		if pg := w.lookup(a >> wpageBits); pg != nil {
			p = pg.getByte(a & (wpageSize - 1))
		}
		out[b] = p
		all = all && p != NoProducer
	}
	return all
}

// MergeInto folds this map's claimed bytes into dst: every byte with a
// real writer here overrides dst's writer, while unclaimed bytes leave
// dst untouched. Shard reconciliation uses it to extend the merged prefix
// writer state with a completed shard's summary; the receiver is left
// unchanged.
func (w *WriterMap) MergeInto(dst *WriterMap) {
	for key, pg := range w.pages {
		base := key << wpageBits
		for wi := uint64(0); wi < wpageWords; wi++ {
			m := pg.mask[wi]
			if m == fullMask {
				if p := pg.word[wi]; p != NoProducer {
					dst.Claim(base+wi<<3, 8, p)
				}
				continue
			}
			for b := uint64(0); b < 8; b++ {
				var p int32
				if m&(1<<b) != 0 {
					p = pg.word[wi]
				} else {
					p = pg.bytes[wi<<3+b]
				}
				if p != NoProducer {
					dst.Set(base+wi<<3+b, p)
				}
			}
		}
	}
}

// LoadProducers fills r.MemSrcs with the distinct writers of the load's
// byte span, in byte order (the linker's load path).
func (w *WriterMap) LoadProducers(r *Record) {
	out := w.AppendLoadProducers(r.Addr, int(r.Width), r.MemSrcs[:0])
	r.NumMemSrcs = uint8(len(out))
}

// AppendLoadProducers appends the distinct writers of [addr, addr+width)
// to dst — in byte order, skipping NoProducer, capped at MaxMemProducers;
// exactly LoadProducers' semantics, but into a caller-provided slice (the
// columnar linker's flat per-chunk producer pool).
func (w *WriterMap) AppendLoadProducers(addr uint64, width int, dst []int32) []int32 {
	// Fast path: an aligned load of a fully word-covered span has exactly
	// one candidate producer — no dedup state needed.
	if aligned(addr, width) {
		pg := w.lookup(addr >> wpageBits)
		if pg == nil {
			return dst
		}
		wi := (addr & (wpageSize - 1)) >> 3
		if pg.mask[wi] == fullMask {
			if p := pg.word[wi]; p != NoProducer {
				dst = append(dst, p)
			}
			return dst
		}
	}
	var seen [MaxMemProducers]int32
	n := 0
	emit := func(p int32) {
		if p == NoProducer {
			return
		}
		for k := 0; k < n; k++ {
			if seen[k] == p {
				return
			}
		}
		if n < MaxMemProducers {
			seen[n] = p
			n++
		}
	}
	if aligned(addr, width) {
		if pg := w.lookup(addr >> wpageBits); pg != nil {
			wi := (addr & (wpageSize - 1)) >> 3
			for b := uint64(0); b < 8; b++ {
				emit(pg.getByte(wi<<3 + b))
			}
		}
		return append(dst, seen[:n]...)
	}
	for width > 0 {
		off := addr & (wpageSize - 1)
		run := uint64(width)
		if off+run > wpageSize {
			run = wpageSize - off
		}
		if pg := w.lookup(addr >> wpageBits); pg != nil {
			for b := uint64(0); b < run; b++ {
				emit(pg.getByte(off + b))
			}
		}
		addr += run
		width -= int(run)
	}
	return append(dst, seen[:n]...)
}
