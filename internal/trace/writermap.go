package trace

// WriterMap tracks the most recent dynamic writer (a sequence number) of
// every memory byte, using page-grained storage so the per-byte bookkeeping
// of the linker and the deadness oracle stays fast on multi-million-
// instruction traces.
type WriterMap struct {
	pages map[uint64]*writerPage
}

const wpageBits = 12
const wpageSize = 1 << wpageBits

type writerPage [wpageSize]int32

// NewWriterMap creates an empty map; every byte reads NoProducer.
func NewWriterMap() *WriterMap {
	return &WriterMap{pages: make(map[uint64]*writerPage, 64)}
}

// Get returns the last writer of addr, or NoProducer.
func (w *WriterMap) Get(addr uint64) int32 {
	pg, ok := w.pages[addr>>wpageBits]
	if !ok {
		return NoProducer
	}
	return pg[addr&(wpageSize-1)]
}

// Set records seq as the last writer of addr.
func (w *WriterMap) Set(addr uint64, seq int32) {
	key := addr >> wpageBits
	pg, ok := w.pages[key]
	if !ok {
		pg = new(writerPage)
		for i := range pg {
			pg[i] = NoProducer
		}
		w.pages[key] = pg
	}
	pg[addr&(wpageSize-1)] = seq
}
