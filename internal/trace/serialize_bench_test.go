package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/isa"
)

// benchTrace synthesizes a linked n-record trace with the op mix that
// matters to the serializer: register writers, stores, loads (producer
// lists), and branches.
func benchTrace(b *testing.B, n int) *Trace {
	b.Helper()
	recs := make([]Record, n)
	for i := range recs {
		pc := int32(i % 1024)
		switch i % 5 {
		case 0, 1:
			recs[i] = Record{PC: pc, Op: isa.ADDI, Rd: isa.Reg(1 + i%8), Rs1: isa.Reg(i % 4), NextPC: pc + 1}
		case 2:
			recs[i] = Record{PC: pc, Op: isa.SD, Rs1: isa.Reg(1 + i%8), Rs2: isa.Reg(1 + (i+1)%8),
				Addr: uint64(i % 4096 * 8), Width: 8, NextPC: pc + 1}
		case 3:
			recs[i] = Record{PC: pc, Op: isa.LD, Rd: isa.Reg(1 + i%8), Rs1: isa.Reg(i % 4),
				Addr: uint64(i % 4096 * 8), Width: 8, NextPC: pc + 1}
		case 4:
			recs[i] = Record{PC: pc, Op: isa.BNE, Rs1: isa.Reg(1 + i%8), Taken: i%3 == 0, NextPC: pc + 1}
		}
	}
	t := FromRecords(recs)
	if err := t.Link(); err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkLoadBytes measures the in-memory decode paths the persistent
// artifact tier's warm start rides: version 1 (relink) and version 2
// (columnar restore).
func BenchmarkLoadBytes(b *testing.B) {
	tr := benchTrace(b, 256<<10)
	for _, v := range []struct {
		name string
		save func(*Trace, io.Writer) error
	}{
		{"v1", (*Trace).Save},
		{"linked", (*Trace).SaveLinked},
	} {
		var buf bytes.Buffer
		if err := v.save(tr, &buf); err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(buf.Len()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				back, err := LoadBytes(buf.Bytes(), 0)
				if err != nil {
					b.Fatal(err)
				}
				back.Release()
			}
		})
	}
}
