package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/faults"

	"repro/internal/isa"
)

func sampleTrace() *Trace {
	// Records 0 and 1 carry ineffectuality hints so every round-trip test
	// proves the hint byte survives both wire formats.
	t := FromRecords([]Record{
		{PC: 0, Op: isa.ADDI, Rd: 1, NextPC: 1, Ineff: HintResultEqRs1},
		{PC: 1, Op: isa.SD, Rs1: 1, Rs2: 1, Addr: 0x1234, Width: 8, NextPC: 2, Ineff: HintSilentStore},
		{PC: 2, Op: isa.LD, Rd: 2, Rs1: 1, Addr: 0x1234, Width: 8, NextPC: 3},
		{PC: 3, Op: isa.BNE, Rs1: 2, Rs2: 0, Taken: true, NextPC: 0},
		{PC: 4, Op: isa.HALT, NextPC: 4},
	})
	return t
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := sampleTrace()
	if err := orig.Link(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), 12+24*orig.Len(); got != want {
		t.Errorf("serialized size = %d, want %d", got, want)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Linked {
		t.Error("loaded trace not linked")
	}
	// Producer links are recomputed by Load's Link, so whole records
	// must match the original linked trace exactly.
	if got, want := back.Records(), orig.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("records differ:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage accepted")
	}
	// Correct magic, wrong version.
	var buf bytes.Buffer
	_ = sampleTrace().Save(&buf)
	b := buf.Bytes()
	b[4] = 99
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated record area.
	buf.Reset()
	_ = sampleTrace().Save(&buf)
	if _, err := Load(bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Error("truncated file accepted")
	}
	// Invalid opcode.
	buf.Reset()
	_ = sampleTrace().Save(&buf)
	b = buf.Bytes()
	b[12+4] = 0xee
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestSaveEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("loaded %d records from empty trace", back.Len())
	}
}

func TestLoadLimitRejectsOversizedHeader(t *testing.T) {
	var buf bytes.Buffer
	_ = sampleTrace().Save(&buf)
	b := buf.Bytes()
	if _, err := LoadLimit(bytes.NewReader(b), 3); err == nil {
		t.Error("header count above limit accepted")
	}
	if _, err := LoadLimit(bytes.NewReader(b), 5); err != nil {
		t.Errorf("count at limit rejected: %v", err)
	}
	// A huge claimed count must fail fast on the header, not by attempting
	// the allocation or reading gigabytes of records.
	binary.LittleEndian.PutUint32(b[8:], 0xffffffff)
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Error("4-billion-record header accepted")
	}
}

func TestLoadRejectsNonzeroReservedBytes(t *testing.T) {
	var buf bytes.Buffer
	_ = sampleTrace().Save(&buf)
	b := buf.Bytes()
	b[12+23] = 1 // first record's reserved byte
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Error("nonzero reserved byte accepted")
	}
}

// TestLoadRejectsInvalidIneffHint checks that both formats validate the
// hint byte against what the emulator can actually produce: hint bits the
// opcode cannot carry, and undefined bits, are corruption.
func TestLoadRejectsInvalidIneffHint(t *testing.T) {
	mutate := func(name string, f func(b []byte)) {
		var buf bytes.Buffer
		_ = sampleTrace().Save(&buf)
		b := buf.Bytes()
		f(b)
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Errorf("v1: %s accepted", name)
		}
	}
	// Record 0 is an ADDI: a silent-store hint is impossible there.
	mutate("silent-store hint on ALU op", func(b []byte) { b[12+22] = HintSilentStore })
	mutate("undefined hint bits", func(b []byte) { b[12+22] = 0x80 })
	// Record 1 is a store: result-equality hints are impossible there.
	mutate("result-eq hint on store", func(b []byte) { b[12+24+22] = HintResultEqRs1 })

	// Linked format: the Ineff column sits after Src2, 21 bytes per record
	// into the section.
	lb, _, _ := linkedSample(t)
	lb[12+4+21*5] = HintSilentStore // record 0 (ADDI)
	if _, err := Load(bytes.NewReader(lb)); err == nil {
		t.Error("linked: silent-store hint on ALU op accepted")
	}
}

func TestLoadRejectsTrailingGarbage(t *testing.T) {
	var buf bytes.Buffer
	_ = sampleTrace().Save(&buf)
	buf.WriteByte(0)
	if _, err := Load(&buf); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// TestLoadUnderCorruptionInjection drives Load with the fault injector's
// Corrupt rule mangling every record: each load must either succeed (the
// flipped bit landed somewhere representable) or fail cleanly — never
// panic — and injected read faults must surface with attribution.
func TestLoadUnderCorruptionInjection(t *testing.T) {
	var buf bytes.Buffer
	_ = sampleTrace().Save(&buf)
	raw := buf.Bytes()

	for seed := uint64(0); seed < 20; seed++ {
		in := faults.NewInjector(seed).
			Arm(faults.SiteTraceLoad, faults.Rule{Kind: faults.Corrupt, Rate: 1})
		faults.Set(in)
		tr, err := Load(bytes.NewReader(raw))
		faults.Set(nil)
		if err == nil && tr.Len() != 5 {
			t.Errorf("seed %d: corrupted load returned %d records", seed, tr.Len())
		}
		if in.Fired(faults.SiteTraceLoad) == 0 {
			t.Errorf("seed %d: corrupt rule never fired", seed)
		}
	}

	in := faults.NewInjector(1).
		Arm(faults.SiteTraceLoad, faults.Rule{Kind: faults.Transient, Rate: 1, Max: 1})
	faults.Set(in)
	defer faults.Set(nil)
	_, err := Load(bytes.NewReader(raw))
	var fe *faults.Error
	if !errors.As(err, &fe) || fe.Site != faults.SiteTraceLoad {
		t.Errorf("injected read fault not attributed: %v", err)
	}
	if !faults.IsTransient(err) {
		t.Error("injected transient load fault lost its retryability")
	}
}

func TestSaveLinkedRoundTrip(t *testing.T) {
	orig := sampleTrace()
	if err := orig.Link(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveLinked(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(buf.Len()), orig.LinkedSize(); got != want {
		t.Errorf("SaveLinked wrote %d bytes, LinkedSize says %d", got, want)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Linked {
		t.Error("loaded linked trace not marked linked")
	}
	// Records() carries Src1/Src2/MemSrcs, so DeepEqual covers the links
	// the version-2 format restored without a link pass.
	if got, want := back.Records(), orig.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("records differ:\n got %+v\nwant %+v", got, want)
	}
}

func TestSaveLinkedMatchesRelink(t *testing.T) {
	// The two load paths — restore links (v2) vs recompute links (v1) —
	// must agree record for record.
	orig := sampleTrace()
	if err := orig.Link(); err != nil {
		t.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := orig.Save(&v1); err != nil {
		t.Fatal(err)
	}
	if err := orig.SaveLinked(&v2); err != nil {
		t.Fatal(err)
	}
	a, err := Load(&v1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(&v2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Records(), b.Records()) {
		t.Fatal("v1 (relinked) and v2 (restored) loads disagree")
	}
}

func TestSaveLinkedRequiresLink(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().SaveLinked(&buf); err == nil {
		t.Error("SaveLinked accepted an unlinked trace")
	}
}

// linkedSample returns the serialized linked sample trace plus the
// offsets of two of its columnar sections: the Src1 column and the
// load-producer stream. The sample fits one chunk: header (12), a
// one-entry size table (4), then the section — 13 bytes of fixed columns
// per record before Src1, 22 in total, then the address side table (two
// memory records).
func linkedSample(t *testing.T) (b []byte, src1Off, prodOff int) {
	t.Helper()
	tr := sampleTrace()
	if err := tr.Link(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.SaveLinked(&buf); err != nil {
		t.Fatal(err)
	}
	n := tr.Len()
	sec := 12 + 4
	src1Off = sec + 13*n
	prodOff = sec + 22*n + 2*8
	return buf.Bytes(), src1Off, prodOff
}

func TestLoadRejectsCorruptLinks(t *testing.T) {
	base, src1Off, prodOff := linkedSample(t)
	mutate := func(name string, f func(b []byte) []byte) {
		b := f(bytes.Clone(base))
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Record 0 has no earlier instruction, so any non-NoProducer Src1 is
	// out of range.
	mutate("src producer not before consumer", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[src1Off:], 3)
		return b
	})
	// The sample's only load (record 2) stores one producer; count 9
	// exceeds both MaxMemProducers and the 8-byte access width.
	mutate("producer count over width", func(b []byte) []byte {
		b[prodOff] = 9
		return b
	})
	// Load producer pointing at the load itself (not strictly earlier).
	mutate("load producer not before load", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[prodOff+1:], 2)
		return b
	})
	mutate("truncated section", func(b []byte) []byte {
		return b[:src1Off+4]
	})
	mutate("undersized size-table entry", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[12:], 1)
		return b
	})
	mutate("trailing garbage after links", func(b []byte) []byte {
		return append(b, 0)
	})
}

func TestLinkedLoadUnderCorruptionInjection(t *testing.T) {
	base, _, _ := linkedSample(t)
	for seed := uint64(0); seed < 20; seed++ {
		in := faults.NewInjector(seed).
			Arm(faults.SiteTraceLoad, faults.Rule{Kind: faults.Corrupt, Rate: 1})
		faults.Set(in)
		tr, err := Load(bytes.NewReader(base))
		faults.Set(nil)
		if err == nil && tr.Len() != 5 {
			t.Errorf("seed %d: corrupted load returned %d records", seed, tr.Len())
		}
	}
}
