package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/isa"
)

func sampleTrace() *Trace {
	t := &Trace{Recs: []Record{
		{PC: 0, Op: isa.ADDI, Rd: 1, NextPC: 1},
		{PC: 1, Op: isa.SD, Rs1: 1, Rs2: 1, Addr: 0x1234, Width: 8, NextPC: 2},
		{PC: 2, Op: isa.LD, Rd: 2, Rs1: 1, Addr: 0x1234, Width: 8, NextPC: 3},
		{PC: 3, Op: isa.BNE, Rs1: 2, Rs2: 0, Taken: true, NextPC: 0},
		{PC: 4, Op: isa.HALT, NextPC: 4},
	}}
	return t
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := sampleTrace()
	if err := orig.Link(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), 12+24*orig.Len(); got != want {
		t.Errorf("serialized size = %d, want %d", got, want)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Linked {
		t.Error("loaded trace not linked")
	}
	// Producer links are recomputed by Load's Link, so whole records
	// must match the original linked trace exactly.
	if !reflect.DeepEqual(back.Recs, orig.Recs) {
		t.Fatalf("records differ:\n got %+v\nwant %+v", back.Recs, orig.Recs)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage accepted")
	}
	// Correct magic, wrong version.
	var buf bytes.Buffer
	_ = sampleTrace().Save(&buf)
	b := buf.Bytes()
	b[4] = 99
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated record area.
	buf.Reset()
	_ = sampleTrace().Save(&buf)
	if _, err := Load(bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Error("truncated file accepted")
	}
	// Invalid opcode.
	buf.Reset()
	_ = sampleTrace().Save(&buf)
	b = buf.Bytes()
	b[12+4] = 0xee
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestSaveEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("loaded %d records from empty trace", back.Len())
	}
}
