package trace

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// refWriterMap is the obviously-correct reference: one map entry per byte.
type refWriterMap map[uint64]int32

func (m refWriterMap) get(addr uint64) int32 {
	if w, ok := m[addr]; ok {
		return w
	}
	return NoProducer
}

func (m refWriterMap) set(addr uint64, width int, seq int32) {
	for b := uint64(0); b < uint64(width); b++ {
		m[addr+b] = seq
	}
}

// memOp is one randomized store or load for the property tests.
type memOp struct {
	addr  uint64
	width int
	store bool
}

// randomOps generates stores and loads of width 1/2/4/8 at arbitrary
// (frequently unaligned, frequently overlapping) addresses, concentrated
// in a small window that straddles a page boundary so page-crossing
// accesses and partial overwrites of word-tracked spans both occur.
func randomOps(rng *rand.Rand, n int) []memOp {
	base := uint64(wpageSize - 64) // straddles the first page boundary
	ops := make([]memOp, n)
	for i := range ops {
		ops[i] = memOp{
			addr:  base + uint64(rng.Intn(160)),
			width: 1 << rng.Intn(4),
			store: rng.Intn(2) == 0,
		}
	}
	return ops
}

func TestWriterMapRandomizedVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		wm := NewWriterMap()
		ref := refWriterMap{}
		var prev []int32
		for seq, op := range randomOps(rng, 400) {
			if op.store {
				// Alternate the two store paths; they must agree.
				if seq%2 == 0 {
					wm.Claim(op.addr, op.width, int32(seq))
				} else {
					prevRef := map[int32]bool{}
					for b := uint64(0); b < uint64(op.width); b++ {
						if w := ref.get(op.addr + b); w != NoProducer {
							prevRef[w] = true
						}
					}
					prev = wm.Overwrite(op.addr, op.width, int32(seq), prev[:0])
					seen := map[int32]bool{}
					for _, p := range prev {
						if !prevRef[p] {
							t.Fatalf("trial %d seq %d: Overwrite reported writer %d not in reference %v",
								trial, seq, p, prevRef)
						}
						seen[p] = true
					}
					if len(seen) != len(prevRef) {
						t.Fatalf("trial %d seq %d: Overwrite writers %v, reference %v",
							trial, seq, prev, prevRef)
					}
				}
				ref.set(op.addr, op.width, int32(seq))
				continue
			}
			r := &Record{Addr: op.addr, Width: uint8(op.width)}
			wm.LoadProducers(r)
			var want Record
			for b := uint64(0); b < uint64(op.width); b++ {
				want.addMemSrc(ref.get(op.addr + b))
			}
			if r.NumMemSrcs != want.NumMemSrcs || r.MemSrcs != want.MemSrcs {
				t.Fatalf("trial %d seq %d: load at %#x/%d producers %v, want %v",
					trial, seq, op.addr, op.width, r.MemProducers(), want.MemProducers())
			}
			// Spot-check the byte view too.
			b := op.addr + uint64(rng.Intn(op.width))
			if got, want := wm.Get(b), ref.get(b); got != want {
				t.Fatalf("trial %d seq %d: Get(%#x) = %d, want %d", trial, seq, b, got, want)
			}
		}
		wm.Reset()
	}
}

func TestWriterMapResetReusesCleanPages(t *testing.T) {
	wm := NewWriterMap()
	wm.Claim(0x40, 8, 7)
	wm.Set(0x9, 9) // partial: spills into the overflow array
	wm.Reset()
	if got := wm.Get(0x40); got != NoProducer {
		t.Errorf("after Reset, Get(0x40) = %d, want NoProducer", got)
	}
	// A recycled page must read empty even where the overflow array held
	// stale entries.
	wm.Claim(0x100, 8, 1)
	if got := wm.Get(0x9); got != NoProducer {
		t.Errorf("recycled page leaks stale writer %d at 0x9", got)
	}
}

// opOfWidth returns the store/load opcode pair for a power-of-two width.
func opOfWidth(width int, store bool) isa.Op {
	stores := map[int]isa.Op{1: isa.SB, 2: isa.SH, 4: isa.SW, 8: isa.SD}
	loads := map[int]isa.Op{1: isa.LB, 2: isa.LH, 4: isa.LW, 8: isa.LD}
	if store {
		return stores[width]
	}
	return loads[width]
}

// TestLinkRandomizedUnalignedVsReference drives whole-trace linking over
// randomized unaligned/overlapping store-load programs and checks the
// word-granular writer map against per-byte reference linking.
func TestLinkRandomizedUnalignedVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		ops := randomOps(rng, 300)
		tr := &Trace{}
		for _, op := range ops {
			tr.Append(Record{
				Op:    opOfWidth(op.width, op.store),
				Rd:    isa.Reg(1 + rng.Intn(4)),
				Addr:  op.addr,
				Width: uint8(op.width),
			})
		}
		if err := tr.Link(); err != nil {
			t.Fatal(err)
		}
		ref := refWriterMap{}
		recs := tr.Records()
		for seq := range recs {
			r := &recs[seq]
			if r.Op.IsLoad() {
				var want Record
				for b := uint64(0); b < uint64(r.Width); b++ {
					want.addMemSrc(ref.get(r.Addr + b))
				}
				if r.NumMemSrcs != want.NumMemSrcs || r.MemSrcs != want.MemSrcs {
					t.Fatalf("trial %d seq %d: load producers %v, want %v",
						trial, seq, r.MemProducers(), want.MemProducers())
				}
			}
			if r.Op.IsStore() {
				ref.set(r.Addr, int(r.Width), int32(seq))
			}
		}
	}
}
