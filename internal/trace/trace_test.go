package trace

import (
	"testing"

	"repro/internal/isa"
)

func TestLinkRegisterProducers(t *testing.T) {
	tr := FromRecords([]Record{
		{PC: 0, Op: isa.ADDI, Rd: 1},                // 0: r1 = ...
		{PC: 1, Op: isa.ADDI, Rd: 2},                // 1: r2 = ...
		{PC: 2, Op: isa.ADD, Rd: 3, Rs1: 1, Rs2: 2}, // 2: r3 = r1+r2
		{PC: 3, Op: isa.ADD, Rd: 1, Rs1: 3, Rs2: 0}, // 3: r1 = r3 (+r0)
		{PC: 4, Op: isa.BEQ, Rs1: 1, Rs2: 3},        // 4: reads r1, r3
	})
	if err := tr.Link(); err != nil {
		t.Fatal(err)
	}
	r := tr.Records()
	if r[2].Src1 != 0 || r[2].Src2 != 1 {
		t.Errorf("add producers = %d,%d; want 0,1", r[2].Src1, r[2].Src2)
	}
	if r[3].Src1 != 2 {
		t.Errorf("r3 producer = %d, want 2", r[3].Src1)
	}
	if r[3].Src2 != NoProducer {
		t.Errorf("r0 should have no producer, got %d", r[3].Src2)
	}
	if r[4].Src1 != 3 || r[4].Src2 != 2 {
		t.Errorf("branch producers = %d,%d; want 3,2", r[4].Src1, r[4].Src2)
	}
}

func TestLinkInitialValuesHaveNoProducer(t *testing.T) {
	tr := FromRecords([]Record{
		{PC: 0, Op: isa.ADD, Rd: 3, Rs1: 5, Rs2: 6},
	})
	if err := tr.Link(); err != nil {
		t.Fatal(err)
	}
	if r := tr.At(0); r.Src1 != NoProducer || r.Src2 != NoProducer {
		t.Errorf("initial regs have producers: %+v", r)
	}
}

func TestLinkMemoryProducers(t *testing.T) {
	tr := FromRecords([]Record{
		{PC: 0, Op: isa.SD, Rs1: 1, Rs2: 2, Addr: 0x100, Width: 8}, // 0
		{PC: 1, Op: isa.SW, Rs1: 1, Rs2: 2, Addr: 0x104, Width: 4}, // 1: overwrites high half
		{PC: 2, Op: isa.LD, Rd: 3, Rs1: 1, Addr: 0x100, Width: 8},  // 2: reads both stores
		{PC: 3, Op: isa.LW, Rd: 4, Rs1: 1, Addr: 0x104, Width: 4},  // 3: reads store 1 only
		{PC: 4, Op: isa.LB, Rd: 5, Rs1: 1, Addr: 0x200, Width: 1},  // 4: untouched memory
	})
	if err := tr.Link(); err != nil {
		t.Fatal(err)
	}
	ld := tr.At(2)
	if ld.NumMemSrcs != 2 {
		t.Fatalf("ld producers = %v, want 2", ld.MemProducers())
	}
	got := map[int32]bool{}
	for _, s := range ld.MemProducers() {
		got[s] = true
	}
	if !got[0] || !got[1] {
		t.Errorf("ld producers = %v, want {0,1}", ld.MemProducers())
	}
	lw := tr.At(3)
	if lw.NumMemSrcs != 1 || lw.MemSrcs[0] != 1 {
		t.Errorf("lw producers = %v, want {1}", lw.MemProducers())
	}
	if r := tr.At(4); r.NumMemSrcs != 0 {
		t.Errorf("untouched load has producers: %v", r.MemProducers())
	}
}

func TestLinkRejectsBadWidth(t *testing.T) {
	tr := FromRecords([]Record{
		{PC: 0, Op: isa.LD, Rd: 1, Width: 4},
	})
	if err := tr.Link(); err == nil {
		t.Error("bad width accepted")
	}
}

func TestLinkIdempotent(t *testing.T) {
	tr := FromRecords([]Record{
		{PC: 0, Op: isa.ADDI, Rd: 1},
		{PC: 1, Op: isa.ADD, Rd: 2, Rs1: 1, Rs2: 1},
	})
	if err := tr.Link(); err != nil {
		t.Fatal(err)
	}
	first := tr.At(1)
	if err := tr.Link(); err != nil {
		t.Fatal(err)
	}
	if got := tr.At(1); got != first {
		t.Errorf("second Link changed record: %+v vs %+v", got, first)
	}
	if !tr.Linked {
		t.Error("Linked flag not set")
	}
}

func TestHasResult(t *testing.T) {
	tests := []struct {
		rec  Record
		want bool
	}{
		{Record{Op: isa.ADD, Rd: 1}, true},
		{Record{Op: isa.ADD, Rd: 0}, false},
		{Record{Op: isa.SD}, false},
		{Record{Op: isa.BEQ}, false},
		{Record{Op: isa.LD, Rd: 5}, true},
		{Record{Op: isa.JAL, Rd: 31}, true},
		{Record{Op: isa.OUT, Rs1: 2}, false},
	}
	for _, tt := range tests {
		if got := tt.rec.HasResult(); got != tt.want {
			t.Errorf("%v HasResult = %v, want %v", tt.rec.Op, got, tt.want)
		}
	}
}

func TestAppendResetsLinked(t *testing.T) {
	tr := &Trace{}
	tr.Append(Record{Op: isa.ADDI, Rd: 1})
	if err := tr.Link(); err != nil {
		t.Fatal(err)
	}
	tr.Append(Record{Op: isa.ADD, Rd: 2, Rs1: 1, Rs2: 1})
	if tr.Linked {
		t.Error("Append should clear Linked")
	}
}

func TestAddMemSrcDedupAndOverflow(t *testing.T) {
	var r Record
	for i := 0; i < 12; i++ {
		r.addMemSrc(int32(i % 10)) // 10 distinct, but capacity is 8
	}
	if r.NumMemSrcs != MaxMemProducers {
		t.Errorf("NumMemSrcs = %d, want %d", r.NumMemSrcs, MaxMemProducers)
	}
	r = Record{}
	r.addMemSrc(5)
	r.addMemSrc(5)
	if r.NumMemSrcs != 1 {
		t.Errorf("dedup failed: %v", r.MemProducers())
	}
	r.addMemSrc(NoProducer)
	if r.NumMemSrcs != 1 {
		t.Error("NoProducer recorded")
	}
}
