// Package trace defines the dynamic instruction record produced by the
// functional emulator and the def-use linker that connects every dynamic
// operand to its producing dynamic instruction. The linked trace is the
// substrate for the deadness oracle (internal/deadness) and the timing
// model (internal/pipeline).
//
// Storage is chunked and columnar (structure-of-arrays): the hot fields
// that every trace walk touches (PC, Op, registers, control-flow outcome,
// and the register producer links) live in dense per-chunk parallel
// arrays, while memory-access data (address, width) and load producer
// links live in side tables indexed only by the records that need them.
// A multi-million-record trace therefore costs ~25-30 bytes per record in
// steady state instead of the ~80 of an array-of-structs layout, and
// sequential scans (the fused oracle, predictor evaluation, the pipeline)
// stream through cache-friendly columns. Full-size chunk arenas are
// recycled through a sync.Pool (see Release), so repeated collections in
// one process reuse storage instead of reallocating it.
package trace

import (
	"fmt"
	"sync"

	"repro/internal/isa"
)

// NoProducer marks an operand with no dynamic producer in the trace: the
// register or memory byte still held its initial (pre-trace) value.
const NoProducer int32 = -1

// Ineffectuality hint bits, set per record by the emulator — the only
// component that observes architectural values — and consumed by the
// deadness pass, which owns the policy of turning raw value-equality
// observations into ineffectuality classes. The bits are mechanism, not
// classification: HintSilentStore records that a store wrote bytes equal
// to the bytes already in memory, and HintResultEqRs1/HintResultEqRs2
// record that a result-producing instruction computed a value equal to
// the (pre-instruction) value of that register source. Unlike producer
// links the hints are NOT derivable from the trace (the trace carries no
// data values), so both wire formats persist them — the warm-start
// invariant is bit-identical records, hints included.
const (
	HintSilentStore uint8 = 1 << iota
	HintResultEqRs1
	HintResultEqRs2

	// HintMask covers every defined hint bit; bytes with bits outside it
	// are rejected by the loaders.
	HintMask = HintSilentStore | HintResultEqRs1 | HintResultEqRs2
)

// MaxMemProducers bounds the producer stores of one load: a load reads at
// most 8 bytes, each with one most-recent writer.
const MaxMemProducers = 8

// Chunk geometry. ChunkSize records per chunk keeps one chunk's hot
// columns around 200 KiB — large enough that chunk bookkeeping is noise,
// small enough that a producer/consumer pair streaming one chunk apart
// (see emu.CollectAnalyzed) stays cache-warm.
const (
	ChunkBits = 13
	ChunkSize = 1 << ChunkBits
	chunkMask = ChunkSize - 1
)

// Record is one committed dynamic instruction, materialized. The columnar
// store assembles a Record on demand (At) and splits one on Append; use
// Ref or the per-chunk columns to walk a trace without materializing.
type Record struct {
	PC  int32 // static instruction index
	Op  isa.Op
	Rd  isa.Reg
	Rs1 isa.Reg
	Rs2 isa.Reg

	// Control-flow outcome.
	Taken  bool  // conditional branches only
	NextPC int32 // PC of the next committed instruction

	// Memory access (loads and stores only).
	Addr  uint64
	Width uint8

	// Producer links, filled by Link. Src1/Src2 are the dynamic sequence
	// numbers of the instructions that produced the register operands,
	// or NoProducer.
	Src1, Src2 int32
	// MemSrcs[:NumMemSrcs] are the distinct producer stores of a load.
	MemSrcs    [MaxMemProducers]int32
	NumMemSrcs uint8

	// Ineff carries the emulator's ineffectuality hint bits (Hint*).
	Ineff uint8
}

// HasResult reports whether the record produces a register value that a
// later instruction could read (destination exists and is not R0).
func (r *Record) HasResult() bool {
	return r.Op.HasDest() && r.Rd != isa.RZero
}

func (r *Record) addMemSrc(w int32) {
	if w == NoProducer {
		return
	}
	for i := uint8(0); i < r.NumMemSrcs; i++ {
		if r.MemSrcs[i] == w {
			return
		}
	}
	if int(r.NumMemSrcs) < MaxMemProducers {
		r.MemSrcs[r.NumMemSrcs] = w
		r.NumMemSrcs++
	}
}

// MemProducers returns the slice view of a load's producer stores.
func (r *Record) MemProducers() []int32 {
	return r.MemSrcs[:r.NumMemSrcs]
}

// Chunk holds up to ChunkSize records in parallel column arrays. Every
// exported column slice has the same length (the number of records in the
// chunk); local index i within a chunk addresses record chunkIndex<<
// ChunkBits + i of the trace. Consumers may read columns freely and the
// linker writes Src1/Src2 through them, but only the trace may append.
type Chunk struct {
	// Hot columns, one entry per record.
	PC     []int32
	Op     []isa.Op
	Rd     []isa.Reg
	Rs1    []isa.Reg
	Rs2    []isa.Reg
	Taken  []bool
	NextPC []int32
	Src1   []int32
	Src2   []int32
	// MemIdx[i] is record i's slot in the memory side tables, or -1 when
	// the record is not a memory access.
	MemIdx []int32
	// Ineff holds the emulator's per-record ineffectuality hint bits
	// (HintSilentStore & co.). Derived facts live in deadness.Analysis;
	// this column is the raw observation stream.
	Ineff []uint8

	// Memory side tables, indexed by MemIdx slot.
	Addr  []uint64
	Width []uint8

	// Load producer links: slot mi of a linked load covers
	// memSrcs[srcOff[mi] : srcOff[mi]+srcLen[mi]]. Store slots keep
	// srcLen 0. The flat array is rebuilt by each link pass.
	srcOff  []int32
	srcLen  []uint8
	memSrcs []int32

	pooled bool // full-capacity arena owned by the chunk pool
}

// Len returns the number of records in the chunk.
func (c *Chunk) Len() int { return len(c.PC) }

// MemProducers returns the producer stores of the load at local index i
// (empty for non-loads and unlinked records).
func (c *Chunk) MemProducers(i int) []int32 {
	mi := c.MemIdx[i]
	if mi < 0 || c.srcLen[mi] == 0 {
		return nil
	}
	off := c.srcOff[mi]
	return c.memSrcs[off : off+int32(c.srcLen[mi])]
}

// BeginLink resets the chunk's load-producer storage ahead of a link pass
// over the chunk. Each load's span is rewritten by LinkLoadProducers, so
// only the flat array needs truncating.
func (c *Chunk) BeginLink() {
	c.memSrcs = c.memSrcs[:0]
}

// LinkLoadProducers computes and records the distinct producer stores of
// the load at local index i from the writer map, returning the producer
// span (valid until the next BeginLink). The caller must have called
// BeginLink on this chunk and must link loads in trace order.
func (c *Chunk) LinkLoadProducers(i int, w *WriterMap) []int32 {
	mi := c.MemIdx[i]
	start := len(c.memSrcs)
	c.memSrcs = w.AppendLoadProducers(c.Addr[mi], int(c.Width[mi]), c.memSrcs)
	c.srcOff[mi] = int32(start)
	c.srcLen[mi] = uint8(len(c.memSrcs) - start)
	return c.memSrcs[start:]
}

// ReserveLoadProducers records producers for the load at local index i
// like LinkLoadProducers, but reserves capacity slots in the flat pool so
// a later SetLoadProducers can rewrite the span with up to capacity
// entries. Sharded analysis reserves the access width for boundary loads
// whose final producer set is only known after reconciliation (a load of
// width w has at most w distinct byte writers).
func (c *Chunk) ReserveLoadProducers(i int, capacity int, producers []int32) {
	mi := c.MemIdx[i]
	start := len(c.memSrcs)
	c.memSrcs = append(c.memSrcs, producers...)
	for len(c.memSrcs) < start+capacity {
		c.memSrcs = append(c.memSrcs, NoProducer)
	}
	c.srcOff[mi] = int32(start)
	c.srcLen[mi] = uint8(len(producers))
}

// SetLoadProducers rewrites the producer span of the load at local index
// i in place. The span must have been sized by ReserveLoadProducers with
// capacity ≥ len(producers).
func (c *Chunk) SetLoadProducers(i int, producers []int32) {
	mi := c.MemIdx[i]
	copy(c.memSrcs[c.srcOff[mi]:], producers)
	c.srcLen[mi] = uint8(len(producers))
}

// push appends one record's fields to the columns. Non-memory records
// canonicalize Addr/Width to zero (they have no side-table slot), and
// MemSrcs are never taken from the input: producer links are derived
// state, recomputed by Link.
func (c *Chunk) push(r *Record) {
	c.PC = append(c.PC, r.PC)
	c.Op = append(c.Op, r.Op)
	c.Rd = append(c.Rd, r.Rd)
	c.Rs1 = append(c.Rs1, r.Rs1)
	c.Rs2 = append(c.Rs2, r.Rs2)
	c.Taken = append(c.Taken, r.Taken)
	c.NextPC = append(c.NextPC, r.NextPC)
	c.Src1 = append(c.Src1, r.Src1)
	c.Src2 = append(c.Src2, r.Src2)
	c.Ineff = append(c.Ineff, r.Ineff)
	mi := int32(-1)
	if r.Op.IsMem() {
		mi = int32(len(c.Addr))
		c.Addr = append(c.Addr, r.Addr)
		c.Width = append(c.Width, r.Width)
		c.srcOff = append(c.srcOff, 0)
		c.srcLen = append(c.srcLen, 0)
	}
	c.MemIdx = append(c.MemIdx, mi)
}

// reset truncates every column, keeping capacity.
func (c *Chunk) reset() {
	c.PC = c.PC[:0]
	c.Op = c.Op[:0]
	c.Rd = c.Rd[:0]
	c.Rs1 = c.Rs1[:0]
	c.Rs2 = c.Rs2[:0]
	c.Taken = c.Taken[:0]
	c.NextPC = c.NextPC[:0]
	c.Src1 = c.Src1[:0]
	c.Src2 = c.Src2[:0]
	c.Ineff = c.Ineff[:0]
	c.MemIdx = c.MemIdx[:0]
	c.Addr = c.Addr[:0]
	c.Width = c.Width[:0]
	c.srcOff = c.srcOff[:0]
	c.srcLen = c.srcLen[:0]
	c.memSrcs = c.memSrcs[:0]
}

// allocChunk builds a chunk whose hot columns hold capacity records
// without growing. The memory side tables start at a quarter of that (the
// suite's traces run 25-35% memory operations) and grow as needed.
func allocChunk(capacity int) *Chunk {
	memCap := capacity / 4
	return &Chunk{
		PC:     make([]int32, 0, capacity),
		Op:     make([]isa.Op, 0, capacity),
		Rd:     make([]isa.Reg, 0, capacity),
		Rs1:    make([]isa.Reg, 0, capacity),
		Rs2:    make([]isa.Reg, 0, capacity),
		Taken:  make([]bool, 0, capacity),
		NextPC: make([]int32, 0, capacity),
		Src1:   make([]int32, 0, capacity),
		Src2:   make([]int32, 0, capacity),
		Ineff:  make([]uint8, 0, capacity),
		MemIdx: make([]int32, 0, capacity),
		Addr:   make([]uint64, 0, memCap),
		Width:  make([]uint8, 0, memCap),
		srcOff: make([]int32, 0, memCap),
		srcLen: make([]uint8, 0, memCap),
	}
}

// chunkPool recycles full-capacity chunk arenas across traces (Release
// feeds it). Pooled chunks come back reset.
var chunkPool = sync.Pool{
	New: func() any { return allocChunk(ChunkSize) },
}

// newChunk returns a chunk able to hold capacity records. Full-size
// requests draw recycled arenas from the pool; smaller hints allocate
// exactly-sized columns (which still grow by append if the hint was low).
func newChunk(capacity int) *Chunk {
	if capacity >= ChunkSize {
		c := chunkPool.Get().(*Chunk)
		c.pooled = true
		return c
	}
	return allocChunk(capacity)
}

// Trace is a chunked columnar dynamic instruction trace.
type Trace struct {
	chunks []*Chunk
	n      int
	// Linked records whether Link has run.
	Linked bool
}

// NewWithCapacity returns an empty trace pre-sized for hint records: the
// first chunk's columns are allocated up front (clamped to one chunk), so
// collection does not grow from zero. Hints of a full chunk or more draw
// recycled arenas from the chunk pool; pass the emulation budget (or a
// validated header count) as the hint.
func NewWithCapacity(hint int) *Trace {
	t := &Trace{}
	if hint > 0 {
		t.chunks = append(t.chunks, newChunk(min(hint, ChunkSize)))
	}
	return t
}

// FromRecords builds a trace from materialized records (primarily a test
// convenience; hot paths append streamingly).
func FromRecords(recs []Record) *Trace {
	t := NewWithCapacity(len(recs))
	for i := range recs {
		t.append(&recs[i])
	}
	return t
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return t.n }

// NumChunks returns the number of chunks holding records. Chunks
// 0..NumChunks-2 are full; the last may be partial.
func (t *Trace) NumChunks() int {
	if t.n == 0 {
		return 0
	}
	return (t.n-1)>>ChunkBits + 1
}

// Chunk returns chunk i for sequential column scans.
func (t *Trace) Chunk(i int) *Chunk { return t.chunks[i] }

// SizeBytes estimates the memory the trace retains: the capacity of every
// column arena across its chunks. Cache layers use it to account resident
// artifacts against a byte budget, so it reflects what Release would give
// back (plus what the GC could reclaim for unpooled chunks).
func (t *Trace) SizeBytes() int64 {
	var n int64
	for _, c := range t.chunks {
		n += c.sizeBytes()
	}
	return n
}

// sizeBytes is the capacity footprint of one chunk's column arenas.
func (c *Chunk) sizeBytes() int64 {
	hot := cap(c.PC)*4 + cap(c.Op) + cap(c.Rd) + cap(c.Rs1) + cap(c.Rs2) +
		cap(c.Taken) + cap(c.NextPC)*4 + cap(c.Src1)*4 + cap(c.Src2)*4 +
		cap(c.Ineff) + cap(c.MemIdx)*4
	side := cap(c.Addr)*8 + cap(c.Width) + cap(c.srcOff)*4 + cap(c.srcLen) + cap(c.memSrcs)*4
	return int64(hot + side)
}

// Append adds a record (unlinked).
func (t *Trace) Append(r Record) { t.append(&r) }

// Push adds a record without copying it through the stack (the emulator's
// sink path; the record is read, never retained).
func (t *Trace) Push(r *Record) { t.append(r) }

func (t *Trace) append(r *Record) {
	ci := t.n >> ChunkBits
	var c *Chunk
	if ci < len(t.chunks) {
		c = t.chunks[ci]
	} else {
		if t.n == 0 {
			// A zero-value trace starts with a growable chunk rather
			// than claiming a full pooled arena for what is usually a
			// handful of hand-built records.
			c = allocChunk(0)
		} else {
			c = newChunk(ChunkSize)
		}
		t.chunks = append(t.chunks, c)
	}
	c.push(r)
	t.n++
	t.Linked = false
}

// At materializes record seq, including its producer links when the trace
// is linked.
func (t *Trace) At(seq int) Record {
	c := t.chunks[seq>>ChunkBits]
	i := seq & chunkMask
	r := Record{
		PC: c.PC[i], Op: c.Op[i], Rd: c.Rd[i], Rs1: c.Rs1[i], Rs2: c.Rs2[i],
		Taken: c.Taken[i], NextPC: c.NextPC[i],
		Src1: c.Src1[i], Src2: c.Src2[i],
		Ineff: c.Ineff[i],
	}
	if mi := c.MemIdx[i]; mi >= 0 {
		r.Addr, r.Width = c.Addr[mi], c.Width[mi]
		off := c.srcOff[mi]
		r.NumMemSrcs = uint8(copy(r.MemSrcs[:], c.memSrcs[off:off+int32(c.srcLen[mi])]))
	}
	return r
}

// Records materializes the whole trace (a test convenience).
func (t *Trace) Records() []Record {
	out := make([]Record, t.n)
	for i := range out {
		out[i] = t.At(i)
	}
	return out
}

// Ref is a cheap positioned view of one record: a chunk pointer plus a
// local index, resolved once so repeated field reads cost one array index
// each.
type Ref struct {
	c *Chunk
	i int32
}

// Ref returns the record view at seq.
func (t *Trace) Ref(seq int) Ref {
	return Ref{t.chunks[seq>>ChunkBits], int32(seq & chunkMask)}
}

func (r Ref) PC() int32     { return r.c.PC[r.i] }
func (r Ref) Op() isa.Op    { return r.c.Op[r.i] }
func (r Ref) Rd() isa.Reg   { return r.c.Rd[r.i] }
func (r Ref) Rs1() isa.Reg  { return r.c.Rs1[r.i] }
func (r Ref) Rs2() isa.Reg  { return r.c.Rs2[r.i] }
func (r Ref) Taken() bool   { return r.c.Taken[r.i] }
func (r Ref) NextPC() int32 { return r.c.NextPC[r.i] }
func (r Ref) Src1() int32   { return r.c.Src1[r.i] }
func (r Ref) Src2() int32   { return r.c.Src2[r.i] }

// Ineff returns the record's ineffectuality hint bits (Hint*).
func (r Ref) Ineff() uint8 { return r.c.Ineff[r.i] }

// Addr returns the memory address of a load or store (0 otherwise).
func (r Ref) Addr() uint64 {
	if mi := r.c.MemIdx[r.i]; mi >= 0 {
		return r.c.Addr[mi]
	}
	return 0
}

// Width returns the access width of a load or store (0 otherwise).
func (r Ref) Width() uint8 {
	if mi := r.c.MemIdx[r.i]; mi >= 0 {
		return r.c.Width[mi]
	}
	return 0
}

// HasResult reports whether the record produces a readable register value.
func (r Ref) HasResult() bool {
	return r.c.Op[r.i].HasDest() && r.c.Rd[r.i] != isa.RZero
}

// MemProducers returns the producer stores of a linked load (empty
// otherwise).
func (r Ref) MemProducers() []int32 { return r.c.MemProducers(int(r.i)) }

// OpAt returns the opcode of record seq.
func (t *Trace) OpAt(seq int) isa.Op {
	return t.chunks[seq>>ChunkBits].Op[seq&chunkMask]
}

// PCAt returns the static instruction index of record seq.
func (t *Trace) PCAt(seq int) int32 {
	return t.chunks[seq>>ChunkBits].PC[seq&chunkMask]
}

// Reset truncates the trace to empty, keeping chunk storage for reuse
// (the windowed-analysis pattern: refill, relink, repeat).
func (t *Trace) Reset() {
	for _, c := range t.chunks {
		c.reset()
	}
	t.n = 0
	t.Linked = false
}

// Release empties the trace and returns its pooled chunk arenas for
// reuse. The trace (and every Ref or column view into it) must not be
// used afterwards.
func (t *Trace) Release() {
	for _, c := range t.chunks {
		if c.pooled {
			c.pooled = false
			c.reset()
			chunkPool.Put(c)
		}
	}
	t.chunks = nil
	t.n = 0
	t.Linked = false
}

// AppendRange appends records [start, end) of src, copying hot columns
// chunk-segment-at-a-time. Producer links are not copied (the destination
// is unlinked); relink to derive them for the new sub-trace.
func (t *Trace) AppendRange(src *Trace, start, end int) {
	for start < end {
		sc := src.chunks[start>>ChunkBits]
		si := start & chunkMask
		run := min(end-start, sc.Len()-si)

		// Destination chunk and the room left in it.
		ci := t.n >> ChunkBits
		if ci >= len(t.chunks) {
			if t.n == 0 {
				t.chunks = append(t.chunks, newChunk(min(run, ChunkSize)))
			} else {
				t.chunks = append(t.chunks, newChunk(ChunkSize))
			}
		}
		c := t.chunks[ci]
		run = min(run, ChunkSize-c.Len())

		c.PC = append(c.PC, sc.PC[si:si+run]...)
		c.Op = append(c.Op, sc.Op[si:si+run]...)
		c.Rd = append(c.Rd, sc.Rd[si:si+run]...)
		c.Rs1 = append(c.Rs1, sc.Rs1[si:si+run]...)
		c.Rs2 = append(c.Rs2, sc.Rs2[si:si+run]...)
		c.Taken = append(c.Taken, sc.Taken[si:si+run]...)
		c.NextPC = append(c.NextPC, sc.NextPC[si:si+run]...)
		c.Ineff = append(c.Ineff, sc.Ineff[si:si+run]...)
		for k := 0; k < run; k++ {
			c.Src1 = append(c.Src1, 0)
			c.Src2 = append(c.Src2, 0)
			mi := int32(-1)
			if smi := sc.MemIdx[si+k]; smi >= 0 {
				mi = int32(len(c.Addr))
				c.Addr = append(c.Addr, sc.Addr[smi])
				c.Width = append(c.Width, sc.Width[smi])
				c.srcOff = append(c.srcOff, 0)
				c.srcLen = append(c.srcLen, 0)
			}
			c.MemIdx = append(c.MemIdx, mi)
		}
		t.n += run
		start += run
	}
	t.Linked = false
}

// Clone deep-copies the trace, including any producer links.
func (t *Trace) Clone() *Trace {
	out := &Trace{n: t.n, Linked: t.Linked}
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.chunks[ci]
		nc := &Chunk{
			PC:      append([]int32(nil), c.PC...),
			Op:      append([]isa.Op(nil), c.Op...),
			Rd:      append([]isa.Reg(nil), c.Rd...),
			Rs1:     append([]isa.Reg(nil), c.Rs1...),
			Rs2:     append([]isa.Reg(nil), c.Rs2...),
			Taken:   append([]bool(nil), c.Taken...),
			NextPC:  append([]int32(nil), c.NextPC...),
			Src1:    append([]int32(nil), c.Src1...),
			Src2:    append([]int32(nil), c.Src2...),
			Ineff:   append([]uint8(nil), c.Ineff...),
			MemIdx:  append([]int32(nil), c.MemIdx...),
			Addr:    append([]uint64(nil), c.Addr...),
			Width:   append([]uint8(nil), c.Width...),
			srcOff:  append([]int32(nil), c.srcOff...),
			srcLen:  append([]uint8(nil), c.srcLen...),
			memSrcs: append([]int32(nil), c.memSrcs...),
		}
		out.chunks = append(out.chunks, nc)
	}
	return out
}

// Link fills the producer columns of every record: register operands via
// a last-writer table, load bytes via a per-byte last-store map. Linking
// is idempotent. It returns an error if a record is malformed (e.g. a
// memory op with a width that does not match its opcode).
func (t *Trace) Link() error {
	var regWriter [isa.NumRegs]int32
	for i := range regWriter {
		regWriter[i] = NoProducer
	}
	memWriter := NewWriterMap()
	defer memWriter.Reset()

	for ci := 0; ci < t.NumChunks(); ci++ {
		if err := t.chunks[ci].link(ci<<ChunkBits, &regWriter, memWriter); err != nil {
			return err
		}
	}
	t.Linked = true
	return nil
}

// link runs the def-use linker over one chunk whose first record is
// dynamic sequence number base, carrying the register and memory
// last-writer state across chunks.
func (c *Chunk) link(base int, regWriter *[isa.NumRegs]int32, memWriter *WriterMap) error {
	c.BeginLink()
	op, rd, rs1, rs2 := c.Op, c.Rd, c.Rs1, c.Rs2
	for i := range op {
		o := op[i]
		seq := int32(base + i)
		s1, s2 := NoProducer, NoProducer
		if o.ReadsRs1() && rs1[i] != isa.RZero {
			s1 = regWriter[rs1[i]]
		}
		if o.ReadsRs2() && rs2[i] != isa.RZero {
			s2 = regWriter[rs2[i]]
		}
		c.Src1[i], c.Src2[i] = s1, s2
		if mi := c.MemIdx[i]; mi >= 0 {
			w := c.Width[mi]
			if w == 0 || int(w) != o.MemWidth() {
				return fmt.Errorf("trace: seq %d: %v has width %d, want %d",
					seq, o, w, o.MemWidth())
			}
			if o.IsLoad() {
				c.LinkLoadProducers(i, memWriter)
			} else {
				memWriter.Claim(c.Addr[mi], int(w), seq)
			}
		}
		if o.HasDest() && rd[i] != isa.RZero {
			regWriter[rd[i]] = seq
		}
	}
	return nil
}
