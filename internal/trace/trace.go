// Package trace defines the dynamic instruction record produced by the
// functional emulator and the def-use linker that connects every dynamic
// operand to its producing dynamic instruction. The linked trace is the
// substrate for the deadness oracle (internal/deadness) and the timing
// model (internal/pipeline).
package trace

import (
	"fmt"

	"repro/internal/isa"
)

// NoProducer marks an operand with no dynamic producer in the trace: the
// register or memory byte still held its initial (pre-trace) value.
const NoProducer int32 = -1

// MaxMemProducers bounds the producer stores of one load: a load reads at
// most 8 bytes, each with one most-recent writer.
const MaxMemProducers = 8

// Record is one committed dynamic instruction.
type Record struct {
	PC  int32 // static instruction index
	Op  isa.Op
	Rd  isa.Reg
	Rs1 isa.Reg
	Rs2 isa.Reg

	// Control-flow outcome.
	Taken  bool  // conditional branches only
	NextPC int32 // PC of the next committed instruction

	// Memory access (loads and stores only).
	Addr  uint64
	Width uint8

	// Producer links, filled by Link. Src1/Src2 are the dynamic sequence
	// numbers of the instructions that produced the register operands,
	// or NoProducer.
	Src1, Src2 int32
	// MemSrcs[:NumMemSrcs] are the distinct producer stores of a load.
	MemSrcs    [MaxMemProducers]int32
	NumMemSrcs uint8
}

// HasResult reports whether the record produces a register value that a
// later instruction could read (destination exists and is not R0).
func (r *Record) HasResult() bool {
	return r.Op.HasDest() && r.Rd != isa.RZero
}

// Trace is a linked dynamic instruction trace.
type Trace struct {
	Recs []Record
	// Linked records whether Link has run.
	Linked bool
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Recs) }

// Append adds a record (unlinked).
func (t *Trace) Append(r Record) {
	t.Recs = append(t.Recs, r)
	t.Linked = false
}

// Link fills the producer fields of every record: register operands via a
// last-writer table, load bytes via a per-byte last-store map. Linking is
// idempotent. It returns an error if a record is malformed (e.g. a memory
// op with zero width).
func (t *Trace) Link() error {
	var regWriter [isa.NumRegs]int32
	for i := range regWriter {
		regWriter[i] = NoProducer
	}
	memWriter := NewWriterMap()
	defer memWriter.Reset()

	for seq := range t.Recs {
		r := &t.Recs[seq]
		r.Src1, r.Src2 = NoProducer, NoProducer
		r.NumMemSrcs = 0
		if r.Op.ReadsRs1() && r.Rs1 != isa.RZero {
			r.Src1 = regWriter[r.Rs1]
		}
		if r.Op.ReadsRs2() && r.Rs2 != isa.RZero {
			r.Src2 = regWriter[r.Rs2]
		}
		if r.Op.IsMem() {
			if r.Width == 0 || int(r.Width) != r.Op.MemWidth() {
				return fmt.Errorf("trace: seq %d: %v has width %d, want %d",
					seq, r.Op, r.Width, r.Op.MemWidth())
			}
		}
		if r.Op.IsLoad() {
			memWriter.LoadProducers(r)
		}
		if r.Op.IsStore() {
			memWriter.Claim(r.Addr, int(r.Width), int32(seq))
		}
		if r.HasResult() {
			regWriter[r.Rd] = int32(seq)
		}
	}
	t.Linked = true
	return nil
}

func (r *Record) addMemSrc(w int32) {
	if w == NoProducer {
		return
	}
	for i := uint8(0); i < r.NumMemSrcs; i++ {
		if r.MemSrcs[i] == w {
			return
		}
	}
	if int(r.NumMemSrcs) < MaxMemProducers {
		r.MemSrcs[r.NumMemSrcs] = w
		r.NumMemSrcs++
	}
}

// MemProducers returns the slice view of a load's producer stores.
func (r *Record) MemProducers() []int32 {
	return r.MemSrcs[:r.NumMemSrcs]
}
