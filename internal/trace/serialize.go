package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Binary trace format: a fixed header followed by fixed-width records.
// Producer links are not stored — they are derived state, recomputed by
// Link on load — so the format stays compact (24 bytes per record) and
// version-stable.
const (
	traceMagic   = 0x64746363 // "dtcc"
	traceVersion = 1
	recordBytes  = 24
)

// Save writes the trace to w. The trace need not be linked.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(t.Recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [recordBytes]byte
	for i := range t.Recs {
		r := &t.Recs[i]
		binary.LittleEndian.PutUint32(buf[0:], uint32(r.PC))
		buf[4] = uint8(r.Op)
		buf[5] = uint8(r.Rd)
		buf[6] = uint8(r.Rs1)
		buf[7] = uint8(r.Rs2)
		binary.LittleEndian.PutUint32(buf[8:], uint32(r.NextPC))
		binary.LittleEndian.PutUint64(buf[12:], r.Addr)
		buf[20] = r.Width
		if r.Taken {
			buf[21] = 1
		} else {
			buf[21] = 0
		}
		// buf[22:24] reserved, zero.
		buf[22], buf[23] = 0, 0
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a trace written by Save and links it.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	t := &Trace{Recs: make([]Record, n)}
	var buf [recordBytes]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		r := &t.Recs[i]
		r.PC = int32(binary.LittleEndian.Uint32(buf[0:]))
		r.Op = isa.Op(buf[4])
		r.Rd = isa.Reg(buf[5])
		r.Rs1 = isa.Reg(buf[6])
		r.Rs2 = isa.Reg(buf[7])
		r.NextPC = int32(binary.LittleEndian.Uint32(buf[8:]))
		r.Addr = binary.LittleEndian.Uint64(buf[12:])
		r.Width = buf[20]
		r.Taken = buf[21] != 0
		if !r.Op.Valid() {
			return nil, fmt.Errorf("trace: record %d: invalid opcode %d", i, buf[4])
		}
	}
	if err := t.Link(); err != nil {
		return nil, err
	}
	return t, nil
}
