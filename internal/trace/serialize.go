package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/faults"
	"repro/internal/isa"
)

// Binary trace format: a fixed header followed by fixed-width records.
// Producer links are not stored — they are derived state, recomputed by
// Link on load — so the format stays compact (24 bytes per record) and
// version-stable.
const (
	traceMagic   = 0x64746363 // "dtcc"
	traceVersion = 1
	recordBytes  = 24
)

// Save writes the trace to w. The trace need not be linked.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.n))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [recordBytes]byte
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.chunks[ci]
		for i := 0; i < c.Len(); i++ {
			binary.LittleEndian.PutUint32(buf[0:], uint32(c.PC[i]))
			buf[4] = uint8(c.Op[i])
			buf[5] = uint8(c.Rd[i])
			buf[6] = uint8(c.Rs1[i])
			buf[7] = uint8(c.Rs2[i])
			binary.LittleEndian.PutUint32(buf[8:], uint32(c.NextPC[i]))
			var addr uint64
			var width uint8
			if mi := c.MemIdx[i]; mi >= 0 {
				addr, width = c.Addr[mi], c.Width[mi]
			}
			binary.LittleEndian.PutUint64(buf[12:], addr)
			buf[20] = width
			if c.Taken[i] {
				buf[21] = 1
			} else {
				buf[21] = 0
			}
			// buf[22:24] reserved, zero.
			buf[22], buf[23] = 0, 0
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DefaultLoadLimit caps how many records Load accepts. The header count
// is untrusted input: without a cap, 4 corrupt bytes could demand a
// multi-hundred-gigabyte allocation before a single record is validated.
// 16M records (~1.5 minutes of emulation at the default budget, ~1 GiB
// in memory) is far beyond any trace this repository produces.
const DefaultLoadLimit = 1 << 24

// Load reads a trace written by Save and links it. It rejects traces
// larger than DefaultLoadLimit records; use LoadLimit for other bounds.
func Load(r io.Reader) (*Trace, error) {
	return LoadLimit(r, DefaultLoadLimit)
}

// LoadLimit reads a trace written by Save, rejecting headers that claim
// more than limit records (limit <= 0 means DefaultLoadLimit). The record
// slice grows incrementally as records validate, so a corrupt header
// cannot force a giant upfront allocation, and the stream must end
// exactly at the last record: trailing garbage and nonzero reserved bytes
// are errors.
func LoadLimit(r io.Reader, limit int) (*Trace, error) {
	if limit <= 0 {
		limit = DefaultLoadLimit
	}
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	if uint64(n) > uint64(limit) {
		return nil, fmt.Errorf("trace: header claims %d records, limit %d", n, limit)
	}
	// Honor the validated header count as the capacity hint: chunked
	// storage means a lying header can demand at most one chunk of
	// upfront allocation, and further chunks materialize only as records
	// validate.
	t := NewWithCapacity(int(n))
	inj := faults.Active()
	var buf [recordBytes]byte
	for i := uint32(0); i < n; i++ {
		if inj != nil {
			if err := inj.Fire(faults.SiteTraceLoad); err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
		}
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if inj != nil {
			inj.Mangle(faults.SiteTraceLoad, buf[:])
		}
		if buf[22] != 0 || buf[23] != 0 {
			return nil, fmt.Errorf("trace: record %d: nonzero reserved bytes", i)
		}
		var rec Record
		rec.PC = int32(binary.LittleEndian.Uint32(buf[0:]))
		rec.Op = isa.Op(buf[4])
		rec.Rd = isa.Reg(buf[5])
		rec.Rs1 = isa.Reg(buf[6])
		rec.Rs2 = isa.Reg(buf[7])
		rec.NextPC = int32(binary.LittleEndian.Uint32(buf[8:]))
		rec.Addr = binary.LittleEndian.Uint64(buf[12:])
		rec.Width = buf[20]
		rec.Taken = buf[21] != 0
		if !rec.Op.Valid() {
			return nil, fmt.Errorf("trace: record %d: invalid opcode %d", i, buf[4])
		}
		if rec.Rd >= isa.NumRegs || rec.Rs1 >= isa.NumRegs || rec.Rs2 >= isa.NumRegs {
			return nil, fmt.Errorf("trace: record %d: register out of range", i)
		}
		if !rec.Op.IsMem() && (rec.Addr != 0 || rec.Width != 0) {
			return nil, fmt.Errorf("trace: record %d: memory fields on non-memory op %v", i, rec.Op)
		}
		t.append(&rec)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("trace: after record %d: %w", n, err)
		}
		return nil, fmt.Errorf("trace: trailing garbage after %d records", n)
	}
	if err := t.Link(); err != nil {
		return nil, err
	}
	return t, nil
}
