package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/lebytes"
)

// Binary trace formats: a fixed header followed by the trace body.
//
// Version 1 stores fixed-width row records — producer links are derived
// state, recomputed by Link on load — so the format stays compact (24
// bytes per record) and version-stable. Ineffectuality hints travel in
// the record image (they are value observations the trace cannot
// re-derive); the pre-hint layout kept the byte reserved-zero, so old
// images remain decodable.
//
// Version 3 ("linked", written by SaveLinked) is the warm-start format of
// the persistent artifact tier, laid out for load speed: after the header
// comes a per-chunk byte-size table, then one self-contained columnar
// section per chunk (hot columns back to back, then the memory address
// side table, then each load's producer-store list). Column sections
// decode with bulk reads and tight per-column loops instead of per-record
// scatter, the size table lets chunks decode independently — in parallel
// on multi-core hosts — and loading restores the links instead of
// re-deriving them, which removes the writer-map walk from the warm-start
// path. Every link is validated against the only invariant that matters
// (a producer strictly precedes its consumer), so a corrupt links section
// is rejected, never trusted.
const (
	traceMagic   = 0x64746363 // "dtcc"
	traceVersion = 1
	// traceVersionLinked is 3: version 2 was the columnar layout without
	// the ineffectuality hint column and is no longer readable (the only
	// persisted v2 images lived inside profile artifacts, whose own codec
	// version gate rejects them as stale before the trace section decodes).
	traceVersionLinked = 3
	recordBytes        = 24 // version-1 row record image

	// hotColumnBytes is the per-record cost of a version-3 section's fixed
	// columns: PC(4) Op(1) Rd(1) Rs1(1) Rs2(1) Taken(1) NextPC(4) Src1(4)
	// Src2(4) Ineff(1).
	hotColumnBytes = 22
	// maxSectionBytesPerRecord bounds a version-3 chunk section per record:
	// fixed columns, an 8-byte address, and a maximal producer list (count
	// byte + 4 bytes per producer). The size table is validated against it
	// so a corrupt table cannot demand an oversized allocation.
	maxSectionBytesPerRecord = hotColumnBytes + 8 + 1 + 4*MaxMemProducers
)

// writeHeader emits the 12-byte file header.
func writeHeader(bw *bufio.Writer, version uint32, n int) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(n))
	_, err := bw.Write(hdr[:])
	return err
}

// encodeRecord fills one 24-byte version-1 record image.
func (c *Chunk) encodeRecord(i int, buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(c.PC[i]))
	buf[4] = uint8(c.Op[i])
	buf[5] = uint8(c.Rd[i])
	buf[6] = uint8(c.Rs1[i])
	buf[7] = uint8(c.Rs2[i])
	binary.LittleEndian.PutUint32(buf[8:], uint32(c.NextPC[i]))
	var addr uint64
	var width uint8
	if mi := c.MemIdx[i]; mi >= 0 {
		addr, width = c.Addr[mi], c.Width[mi]
	}
	binary.LittleEndian.PutUint64(buf[12:], addr)
	buf[20] = width
	if c.Taken[i] {
		buf[21] = 1
	} else {
		buf[21] = 0
	}
	buf[22] = c.Ineff[i]
	buf[23] = 0 // reserved
}

// writeRecords encodes the version-1 record section a chunk at a time:
// each chunk's records are assembled into one reusable buffer and written
// with a single Write, instead of one 24-byte Write per record.
func (t *Trace) writeRecords(bw *bufio.Writer) error {
	buf := make([]byte, ChunkSize*recordBytes)
	for ci := 0; ci < t.NumChunks(); ci++ {
		c := t.chunks[ci]
		cn := c.Len()
		b := buf[:cn*recordBytes]
		for i := 0; i < cn; i++ {
			c.encodeRecord(i, b[i*recordBytes:])
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Save writes the trace to w in the version-1 format (records only; links
// are recomputed on load). The trace need not be linked.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, traceVersion, t.n); err != nil {
		return err
	}
	if err := t.writeRecords(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// sectionSize returns the byte length of the chunk's version-3 columnar
// section.
func (c *Chunk) sectionSize() int {
	n := c.Len()*hotColumnBytes + len(c.Addr)*8
	for i := 0; i < c.Len(); i++ {
		if mi := c.MemIdx[i]; mi >= 0 && c.Op[i].IsLoad() {
			n += 1 + 4*int(c.srcLen[mi])
		}
	}
	return n
}

// encodeSection fills b (sized by sectionSize) with the chunk's columnar
// section. Access widths are not stored: Link proved every memory record's
// width equals its opcode's MemWidth, so the loader re-derives them. On
// little-endian hosts each column is one copy (a Go bool is stored as 0 or
// 1, so the Taken column's memory image is its wire image too).
func (c *Chunk) encodeSection(b []byte) {
	cn := c.Len()
	var off int
	if lebytes.Little {
		copy(b[:4*cn], lebytes.I32(c.PC))
		copy(b[4*cn:5*cn], lebytes.U8(c.Op))
		copy(b[5*cn:6*cn], lebytes.U8(c.Rd))
		copy(b[6*cn:7*cn], lebytes.U8(c.Rs1))
		copy(b[7*cn:8*cn], lebytes.U8(c.Rs2))
		copy(b[8*cn:9*cn], lebytes.Bool(c.Taken))
		copy(b[9*cn:13*cn], lebytes.I32(c.NextPC))
		copy(b[13*cn:17*cn], lebytes.I32(c.Src1))
		copy(b[17*cn:21*cn], lebytes.I32(c.Src2))
		copy(b[21*cn:22*cn], c.Ineff)
		copy(b[22*cn:], lebytes.U64(c.Addr))
		off = 22*cn + 8*len(c.Addr)
	} else {
		for i, v := range c.PC {
			binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
		}
		off = 4 * cn
		for i, v := range c.Op {
			b[off+i] = byte(v)
		}
		off += cn
		for i, v := range c.Rd {
			b[off+i] = byte(v)
		}
		off += cn
		for i, v := range c.Rs1 {
			b[off+i] = byte(v)
		}
		off += cn
		for i, v := range c.Rs2 {
			b[off+i] = byte(v)
		}
		off += cn
		for i, v := range c.Taken {
			if v {
				b[off+i] = 1
			} else {
				b[off+i] = 0
			}
		}
		off += cn
		for i, v := range c.NextPC {
			binary.LittleEndian.PutUint32(b[off+i*4:], uint32(v))
		}
		off += 4 * cn
		for i, v := range c.Src1 {
			binary.LittleEndian.PutUint32(b[off+i*4:], uint32(v))
		}
		off += 4 * cn
		for i, v := range c.Src2 {
			binary.LittleEndian.PutUint32(b[off+i*4:], uint32(v))
		}
		off += 4 * cn
		copy(b[off:off+cn], c.Ineff)
		off += cn
		for i, v := range c.Addr {
			binary.LittleEndian.PutUint64(b[off+i*8:], v)
		}
		off += 8 * len(c.Addr)
	}
	// Loads' producer-store lists, in record order: one count byte per
	// load followed by the producers. Stores carry no list.
	for i := 0; i < cn; i++ {
		mi := c.MemIdx[i]
		if mi < 0 || !c.Op[i].IsLoad() {
			continue
		}
		b[off] = c.srcLen[mi]
		off++
		s := c.srcOff[mi]
		for k := int32(0); k < int32(c.srcLen[mi]); k++ {
			binary.LittleEndian.PutUint32(b[off:], uint32(c.memSrcs[s+k]))
			off += 4
		}
	}
}

// SaveLinked writes the trace to w in the version-3 columnar format, which
// carries the producer links alongside the records. Loading it skips the
// link pass, so a persisted profile warm-starts without re-deriving
// def-use state. The trace must be linked.
func (t *Trace) SaveLinked(w io.Writer) error {
	if !t.Linked {
		return errors.New("trace: SaveLinked requires a linked trace (call Link first)")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, traceVersionLinked, t.n); err != nil {
		return err
	}
	nc := t.NumChunks()
	sizes := make([]int, nc)
	tbl := make([]byte, 4*nc)
	maxSize := 0
	for ci := 0; ci < nc; ci++ {
		sizes[ci] = t.chunks[ci].sectionSize()
		binary.LittleEndian.PutUint32(tbl[ci*4:], uint32(sizes[ci]))
		maxSize = max(maxSize, sizes[ci])
	}
	if _, err := bw.Write(tbl); err != nil {
		return err
	}
	buf := make([]byte, maxSize)
	for ci := 0; ci < nc; ci++ {
		b := buf[:sizes[ci]]
		t.chunks[ci].encodeSection(b)
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LinkedSize returns the exact number of bytes SaveLinked will write for
// the trace, so callers embedding a trace in a larger stream can length-
// prefix the section without buffering it. The trace must be linked.
func (t *Trace) LinkedSize() int64 {
	nc := t.NumChunks()
	n := int64(12 + 4*nc)
	for ci := 0; ci < nc; ci++ {
		n += int64(t.chunks[ci].sectionSize())
	}
	return n
}

// DefaultLoadLimit caps how many records Load accepts. The header count
// is untrusted input: without a cap, 4 corrupt bytes could demand a
// multi-hundred-gigabyte allocation before a single record is validated.
// 16M records (~1.5 minutes of emulation at the default budget, ~1 GiB
// in memory) is far beyond any trace this repository produces.
const DefaultLoadLimit = 1 << 24

// Load reads a trace written by Save or SaveLinked and returns it linked.
// It rejects traces larger than DefaultLoadLimit records; use LoadLimit
// for other bounds.
func Load(r io.Reader) (*Trace, error) {
	return LoadLimit(r, DefaultLoadLimit)
}

// parseHeader validates the 12-byte file header against limit and returns
// the format version and record count.
func parseHeader(hdr []byte, limit int) (version uint32, n int, err error) {
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != traceMagic {
		return 0, 0, fmt.Errorf("trace: bad magic %#x", m)
	}
	version = binary.LittleEndian.Uint32(hdr[4:])
	cnt := binary.LittleEndian.Uint32(hdr[8:])
	if uint64(cnt) > uint64(limit) {
		return 0, 0, fmt.Errorf("trace: header claims %d records, limit %d", cnt, limit)
	}
	return version, int(cnt), nil
}

// bodyBound returns the largest body (post-header byte count) any valid
// n-record trace of the given version can have. The header count is
// validated against the load limit before this runs, so the bound caps how
// much of an untrusted stream LoadLimit will ever buffer.
func bodyBound(version uint32, n int) (int, error) {
	switch version {
	case traceVersion:
		return n * recordBytes, nil
	case traceVersionLinked:
		if n == 0 {
			return 0, nil
		}
		nc := (n-1)>>ChunkBits + 1
		return 4*nc + n*maxSectionBytesPerRecord, nil
	default:
		return 0, fmt.Errorf("trace: unsupported version %d", version)
	}
}

// LoadLimit reads a trace written by Save (version 1, links recomputed) or
// SaveLinked (version 3, links restored and validated), rejecting headers
// that claim more than limit records (limit <= 0 means DefaultLoadLimit).
// The body is buffered incrementally up to the version's per-record bound,
// so a corrupt header cannot force a giant upfront allocation, and the
// stream must end exactly at the last byte: trailing garbage, malformed
// records, and link entries that do not strictly precede their consumer
// are errors.
func LoadLimit(r io.Reader, limit int) (*Trace, error) {
	if limit <= 0 {
		limit = DefaultLoadLimit
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	version, n, err := parseHeader(hdr[:], limit)
	if err != nil {
		return nil, err
	}
	bound, err := bodyBound(version, n)
	if err != nil {
		return nil, err
	}
	// Read one byte past the bound: a stream still going at that point
	// cannot be a valid trace, and cutting it off keeps a lying stream
	// from exhausting memory.
	body, err := io.ReadAll(io.LimitReader(r, int64(bound)+1))
	if err != nil {
		return nil, fmt.Errorf("trace: reading body: %w", err)
	}
	if len(body) > bound {
		return nil, fmt.Errorf("trace: trailing garbage after %d records", n)
	}
	return loadBody(version, n, body, false)
}

// LoadBytes decodes a trace image (as written by Save or SaveLinked) held
// entirely in memory, with the same validation and limit semantics as
// LoadLimit. Columnar sections decode straight out of data with no
// intermediate copy, which makes this the fast path for callers that
// already hold the image — the persistent artifact tier's warm start
// reads a verified payload and decodes it in place. No reference to data
// is retained.
func LoadBytes(data []byte, limit int) (*Trace, error) {
	if limit <= 0 {
		limit = DefaultLoadLimit
	}
	if len(data) < 12 {
		return nil, fmt.Errorf("trace: reading header: %w", io.ErrUnexpectedEOF)
	}
	version, n, err := parseHeader(data, limit)
	if err != nil {
		return nil, err
	}
	return loadBody(version, n, data[12:], true)
}

// loadBody decodes the post-header bytes of either format. shared marks a
// body aliasing a caller-owned buffer, which fault injection must not
// corrupt in place.
func loadBody(version uint32, n int, body []byte, shared bool) (*Trace, error) {
	inj := faults.Active()
	if inj != nil && shared {
		body = append([]byte(nil), body...)
	}
	switch version {
	case traceVersion:
		if len(body) < n*recordBytes {
			return nil, fmt.Errorf("trace: record %d: %w", len(body)/recordBytes, io.ErrUnexpectedEOF)
		}
		if len(body) > n*recordBytes {
			return nil, fmt.Errorf("trace: trailing garbage after %d records", n)
		}
		t, err := loadRecords(body, n, inj)
		if err != nil {
			return nil, err
		}
		if err := t.Link(); err != nil {
			return nil, err
		}
		return t, nil
	case traceVersionLinked:
		return loadColumnar(body, n, inj)
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
}

// extend returns s resized to n elements, reusing its arena when the
// capacity allows (the pooled-chunk fast path) and reallocating otherwise.
// Contents are unspecified; the caller overwrites every element.
func extend[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// loadRecords decodes the version-1 record section (already sized exactly
// by loadBody) chunk by chunk, with tight per-column loops.
func loadRecords(body []byte, n int, inj *faults.Injector) (*Trace, error) {
	t := NewWithCapacity(n)
	for base := 0; base < n; base += ChunkSize {
		cn := min(n-base, ChunkSize)
		b := body[base*recordBytes : (base+cn)*recordBytes]
		if inj != nil {
			if err := inj.Fire(faults.SiteTraceLoad); err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", base, err)
			}
			inj.Mangle(faults.SiteTraceLoad, b)
		}
		ci := base >> ChunkBits
		var c *Chunk
		if ci < len(t.chunks) {
			c = t.chunks[ci]
		} else {
			c = newChunk(ChunkSize)
			t.chunks = append(t.chunks, c)
		}
		if err := c.decodeRecords(b, base, cn); err != nil {
			return nil, err
		}
		t.n += cn
	}
	return t, nil
}

// decodeRecords fills the chunk from cn version-1 row records, validating
// each field (opcode, registers, memory fields only on memory ops).
func (c *Chunk) decodeRecords(b []byte, base, cn int) error {
	c.PC = extend(c.PC, cn)
	c.Op = extend(c.Op, cn)
	c.Rd = extend(c.Rd, cn)
	c.Rs1 = extend(c.Rs1, cn)
	c.Rs2 = extend(c.Rs2, cn)
	c.Taken = extend(c.Taken, cn)
	c.NextPC = extend(c.NextPC, cn)
	c.Src1 = extend(c.Src1, cn)
	c.Src2 = extend(c.Src2, cn)
	c.MemIdx = extend(c.MemIdx, cn)
	c.Ineff = extend(c.Ineff, cn)
	memCnt := 0
	for i := 0; i < cn; i++ {
		r := b[i*recordBytes : (i+1)*recordBytes]
		if r[23] != 0 {
			return fmt.Errorf("trace: record %d: nonzero reserved byte", base+i)
		}
		op := isa.Op(r[4])
		if !op.Valid() {
			return fmt.Errorf("trace: record %d: invalid opcode %d", base+i, r[4])
		}
		rd, rs1, rs2 := isa.Reg(r[5]), isa.Reg(r[6]), isa.Reg(r[7])
		if rd >= isa.NumRegs || rs1 >= isa.NumRegs || rs2 >= isa.NumRegs {
			return fmt.Errorf("trace: record %d: register out of range", base+i)
		}
		if h := r[22]; h != 0 && !validIneffHint(r[4], rd, h) {
			return fmt.Errorf("trace: record %d: invalid ineffectuality hint %#x for %v", base+i, r[22], op)
		}
		c.Ineff[i] = r[22]
		c.PC[i] = int32(binary.LittleEndian.Uint32(r[0:]))
		c.Op[i] = op
		c.Rd[i], c.Rs1[i], c.Rs2[i] = rd, rs1, rs2
		c.NextPC[i] = int32(binary.LittleEndian.Uint32(r[8:]))
		c.Taken[i] = r[21] != 0
		c.Src1[i], c.Src2[i] = 0, 0
		if op.IsMem() {
			c.MemIdx[i] = int32(memCnt)
			memCnt++
		} else {
			if binary.LittleEndian.Uint64(r[12:]) != 0 || r[20] != 0 {
				return fmt.Errorf("trace: record %d: memory fields on non-memory op %v", base+i, op)
			}
			c.MemIdx[i] = -1
		}
	}
	c.Addr = extend(c.Addr, memCnt)
	c.Width = extend(c.Width, memCnt)
	c.srcOff = extend(c.srcOff, memCnt)
	c.srcLen = extend(c.srcLen, memCnt)
	mi := 0
	for i := 0; i < cn; i++ {
		if c.MemIdx[i] < 0 {
			continue
		}
		r := b[i*recordBytes:]
		c.Addr[mi] = binary.LittleEndian.Uint64(r[12:])
		c.Width[mi] = r[20]
		c.srcOff[mi], c.srcLen[mi] = 0, 0
		mi++
	}
	return nil
}

// loadColumnar decodes the version-3 body: the chunk size table, then one
// columnar section per chunk, each sliced straight out of body with no
// intermediate copy. Sections are independent, so on multi-core hosts they
// decode in parallel — the warm-start path's wall clock is one chunk's
// decode, not the sum over chunks.
func loadColumnar(body []byte, n int, inj *faults.Injector) (*Trace, error) {
	t := &Trace{Linked: true}
	if n == 0 {
		if len(body) != 0 {
			return nil, fmt.Errorf("trace: trailing garbage after 0 records")
		}
		return t, nil
	}
	nc := (n-1)>>ChunkBits + 1
	if len(body) < 4*nc {
		return nil, fmt.Errorf("trace: chunk size table: %w", io.ErrUnexpectedEOF)
	}
	tbl := body[:4*nc]
	if inj != nil {
		if err := inj.Fire(faults.SiteTraceLoad); err != nil {
			return nil, fmt.Errorf("trace: chunk size table: %w", err)
		}
		inj.Mangle(faults.SiteTraceLoad, tbl)
	}
	sizes := make([]int, nc)
	for k := range sizes {
		cn := min(n-k<<ChunkBits, ChunkSize)
		sz := int(binary.LittleEndian.Uint32(tbl[k*4:]))
		if sz < cn*hotColumnBytes || sz > cn*maxSectionBytesPerRecord {
			return nil, fmt.Errorf("trace: chunk %d: section size %d out of range", k, sz)
		}
		sizes[k] = sz
	}
	parallel := nc > 1 && runtime.GOMAXPROCS(0) > 1
	errs := make([]error, nc)
	var wg sync.WaitGroup
	off := 4 * nc
	for k := 0; k < nc; k++ {
		cn := min(n-k<<ChunkBits, ChunkSize)
		if len(body)-off < sizes[k] {
			wg.Wait()
			return nil, fmt.Errorf("trace: chunk %d: %w", k, io.ErrUnexpectedEOF)
		}
		sec := body[off : off+sizes[k]]
		off += sizes[k]
		if inj != nil {
			if err := inj.Fire(faults.SiteTraceLoad); err != nil {
				wg.Wait()
				return nil, fmt.Errorf("trace: chunk %d: %w", k, err)
			}
			inj.Mangle(faults.SiteTraceLoad, sec)
		}
		c := newChunk(min(cn, ChunkSize))
		t.chunks = append(t.chunks, c)
		base := k << ChunkBits
		if parallel {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				errs[k] = c.decodeSection(sec, base, cn)
			}(k)
		} else {
			errs[k] = c.decodeSection(sec, base, cn)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("trace: trailing garbage after %d records", n)
	}
	t.n = n
	return t, nil
}

// Decoder classification table, 256-wide so an arbitrary opcode byte
// indexes it safely: zero means invalid, otherwise the valid bit, the
// memory/load flags, and the access width in the high nibble. Built from
// the isa predicate methods so they stay the single source of truth
// (mirroring isa's own flag tables).
const (
	opInfoValid = 1 << 0
	opInfoMem   = 1 << 1
	opInfoLoad  = 1 << 2
)

// hintAllowed maps an opcode byte to the hint bits the emulator can
// legally produce for it: silent-store on stores, result-equals-source
// bits on result-producing ops for the sources the op actually reads.
// Anything outside that in a hint byte marks a corrupt image — the
// loaders reject it rather than let forged hints reach the analysis.
var hintAllowed = func() (t [256]uint8) {
	for i := range t {
		op := isa.Op(i)
		if !op.Valid() {
			continue
		}
		f := op.Flags()
		switch {
		case f&isa.FlagStore != 0:
			t[i] = HintSilentStore
		case f&(isa.FlagHasDest|isa.FlagControl|isa.FlagLoad) == isa.FlagHasDest:
			if f&isa.FlagReadsRs1 != 0 {
				t[i] |= HintResultEqRs1
			}
			if f&isa.FlagReadsRs2 != 0 {
				t[i] |= HintResultEqRs2
			}
		}
	}
	return t
}()

// validIneffHint reports whether h is a hint byte the emulator could have
// produced for an op/rd pair: no bits beyond the opcode's allowance, and
// result-equality bits only on instructions with a real destination.
func validIneffHint(op byte, rd isa.Reg, h uint8) bool {
	if h&^hintAllowed[op] != 0 {
		return false
	}
	return h&(HintResultEqRs1|HintResultEqRs2) == 0 || rd != isa.RZero
}

var opInfo = func() (t [256]uint8) {
	for i := range t {
		op := isa.Op(i)
		if !op.Valid() {
			continue
		}
		b := uint8(opInfoValid)
		if op.IsMem() {
			b |= opInfoMem
		}
		if op.IsLoad() {
			b |= opInfoLoad
		}
		t[i] = b | uint8(op.MemWidth())<<4
	}
	return t
}()

// SWAR masks for word-at-a-time column validation. A register byte is
// valid iff it carries no bit outside NumRegs-1 (NumRegs is a power of
// two — enforced at compile time below); a taken byte must be 0 or 1.
const (
	swarSpread    = 0x0101010101010101
	regHighBits   = 0xFF &^ (isa.NumRegs - 1)
	regHighMask   = regHighBits * swarSpread
	takenHighMask = 0xFE * swarSpread
)

var _ = [1]struct{}{}[isa.NumRegs&(isa.NumRegs-1)] // NumRegs must be a power of two

// validateRegsTaken checks the three register columns against NumRegs and
// the taken column against {0,1}, eight records per step; a failing word
// falls back to a scalar scan to attribute the exact record.
func validateRegsTaken(rdb, rs1b, rs2b, takenb []byte, base, cn int) error {
	i := 0
	for ; i+8 <= cn; i += 8 {
		w := binary.LittleEndian.Uint64(rdb[i:]) |
			binary.LittleEndian.Uint64(rs1b[i:]) |
			binary.LittleEndian.Uint64(rs2b[i:])
		if w&regHighMask != 0 || binary.LittleEndian.Uint64(takenb[i:])&takenHighMask != 0 {
			break
		}
	}
	for ; i < cn; i++ {
		if rdb[i]|rs1b[i]|rs2b[i] >= isa.NumRegs {
			return fmt.Errorf("trace: record %d: register out of range", base+i)
		}
		if takenb[i] > 1 {
			return fmt.Errorf("trace: record %d: invalid taken flag %d", base+i, takenb[i])
		}
	}
	return nil
}

// decodeSection fills the chunk from one version-3 columnar section whose
// first record is trace sequence number base. Every field is validated:
// opcodes, registers, taken flags, producer links strictly preceding
// their consumer, load producer lists bounded by the access width and
// distinct, and the section consumed exactly. On little-endian hosts the
// columns transfer as single copies (their wire image is their memory
// image) with the validation running as word-at-a-time scans; other hosts
// take the scalar loops.
func (c *Chunk) decodeSection(b []byte, base, cn int) error {
	// Section size was validated >= cn*hotColumnBytes by the caller.
	pcb := b[:4*cn]
	opb := b[4*cn : 5*cn]
	rdb := b[5*cn : 6*cn]
	rs1b := b[6*cn : 7*cn]
	rs2b := b[7*cn : 8*cn]
	takenb := b[8*cn : 9*cn]
	nextb := b[9*cn : 13*cn]
	src1b := b[13*cn : 17*cn]
	src2b := b[17*cn : 21*cn]
	ineffb := b[21*cn : 22*cn]
	rest := b[22*cn:]

	c.PC = extend(c.PC, cn)
	c.Op = extend(c.Op, cn)
	c.Rd = extend(c.Rd, cn)
	c.Rs1 = extend(c.Rs1, cn)
	c.Rs2 = extend(c.Rs2, cn)
	c.Taken = extend(c.Taken, cn)
	c.NextPC = extend(c.NextPC, cn)
	c.Src1 = extend(c.Src1, cn)
	c.Src2 = extend(c.Src2, cn)
	c.MemIdx = extend(c.MemIdx, cn)
	c.Ineff = extend(c.Ineff, cn)

	memCnt := 0
	for i := 0; i < cn; i++ {
		inf := opInfo[opb[i]]
		if inf&opInfoValid == 0 {
			return fmt.Errorf("trace: record %d: invalid opcode %d", base+i, opb[i])
		}
		if inf&opInfoMem != 0 {
			c.MemIdx[i] = int32(memCnt)
			memCnt++
		} else {
			c.MemIdx[i] = -1
		}
	}
	if err := validateRegsTaken(rdb, rs1b, rs2b, takenb, base, cn); err != nil {
		return err
	}
	for i, h := range ineffb {
		if h != 0 && !validIneffHint(opb[i], isa.Reg(rdb[i]), h) {
			return fmt.Errorf("trace: record %d: invalid ineffectuality hint %#x for %v",
				base+i, h, isa.Op(opb[i]))
		}
	}
	if lebytes.Little {
		copy(lebytes.U8(c.Op[:cn]), opb)
		copy(lebytes.U8(c.Rd[:cn]), rdb)
		copy(lebytes.U8(c.Rs1[:cn]), rs1b)
		copy(lebytes.U8(c.Rs2[:cn]), rs2b)
		copy(lebytes.Bool(c.Taken[:cn]), takenb) // bytes proved 0/1 above
		copy(lebytes.I32(c.PC[:cn]), pcb)
		copy(lebytes.I32(c.NextPC[:cn]), nextb)
		copy(lebytes.I32(c.Src1[:cn]), src1b)
		copy(lebytes.I32(c.Src2[:cn]), src2b)
		copy(c.Ineff[:cn], ineffb)
	} else {
		for i := 0; i < cn; i++ {
			c.Op[i] = isa.Op(opb[i])
			c.Rd[i], c.Rs1[i], c.Rs2[i] = isa.Reg(rdb[i]), isa.Reg(rs1b[i]), isa.Reg(rs2b[i])
			c.Taken[i] = takenb[i] != 0
			c.PC[i] = int32(binary.LittleEndian.Uint32(pcb[i*4:]))
			c.NextPC[i] = int32(binary.LittleEndian.Uint32(nextb[i*4:]))
			c.Src1[i] = int32(binary.LittleEndian.Uint32(src1b[i*4:]))
			c.Src2[i] = int32(binary.LittleEndian.Uint32(src2b[i*4:]))
		}
		copy(c.Ineff[:cn], ineffb)
	}
	for i, v := range c.Src1[:cn] {
		if v != NoProducer && (v < 0 || v >= int32(base+i)) {
			return fmt.Errorf("trace: record %d: src1 producer %d out of range", base+i, v)
		}
	}
	for i, v := range c.Src2[:cn] {
		if v != NoProducer && (v < 0 || v >= int32(base+i)) {
			return fmt.Errorf("trace: record %d: src2 producer %d out of range", base+i, v)
		}
	}

	if len(rest) < 8*memCnt {
		return fmt.Errorf("trace: chunk at %d: truncated address column", base)
	}
	addrb := rest[:8*memCnt]
	prod := rest[8*memCnt:]
	c.Addr = extend(c.Addr, memCnt)
	c.Width = extend(c.Width, memCnt)
	c.srcOff = extend(c.srcOff, memCnt)
	c.srcLen = extend(c.srcLen, memCnt)
	if lebytes.Little {
		copy(lebytes.U64(c.Addr[:memCnt]), addrb)
	} else {
		for i := 0; i < memCnt; i++ {
			c.Addr[i] = binary.LittleEndian.Uint64(addrb[i*8:])
		}
	}
	// One pass over the memory records fills the side tables and decodes
	// each load's producer list. Widths are not stored: SaveLinked requires
	// a linked trace, and Link proved every memory record's width equals
	// its opcode's MemWidth.
	c.memSrcs = c.memSrcs[:0]
	mi := 0
	for i := 0; i < cn; i++ {
		if c.MemIdx[i] < 0 {
			continue
		}
		inf := opInfo[opb[i]]
		width := inf >> 4
		c.Width[mi] = width
		c.srcOff[mi], c.srcLen[mi] = 0, 0
		if inf&opInfoLoad != 0 {
			if len(prod) < 1 {
				return fmt.Errorf("trace: record %d: producer count: unexpected EOF", base+i)
			}
			cnt := int(prod[0])
			prod = prod[1:]
			if cnt > MaxMemProducers || cnt > int(width) {
				return fmt.Errorf("trace: record %d: %d producers exceeds width-%d load",
					base+i, cnt, width)
			}
			if len(prod) < 4*cnt {
				return fmt.Errorf("trace: record %d: truncated producer list", base+i)
			}
			start := len(c.memSrcs)
			for k := 0; k < cnt; k++ {
				p := int32(binary.LittleEndian.Uint32(prod[k*4:]))
				if p < 0 || p >= int32(base+i) {
					return fmt.Errorf("trace: record %d: load producer %d out of range", base+i, p)
				}
				for _, prev := range c.memSrcs[start:] {
					if prev == p {
						return fmt.Errorf("trace: record %d: duplicate load producer %d", base+i, p)
					}
				}
				c.memSrcs = append(c.memSrcs, p)
			}
			prod = prod[4*cnt:]
			c.srcOff[mi] = int32(start)
			c.srcLen[mi] = uint8(cnt)
		}
		mi++
	}
	if len(prod) != 0 {
		return fmt.Errorf("trace: chunk at %d: %d trailing bytes in section", base, len(prod))
	}
	return nil
}
