package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzTraceLoad throws arbitrary bytes at the trace deserializer. Load
// handles untrusted input, so the property is total: any input either
// yields a valid linked trace that round-trips bit-for-bit through Save,
// or a clean error — never a panic or a runaway allocation (the fuzzer's
// memory limit enforces the latter).
func FuzzTraceLoad(f *testing.F) {
	// Seed with real serializations: empty, the sample trace, and a
	// truncated + a padded variant so the mutator starts near the
	// interesting boundaries.
	var empty bytes.Buffer
	if err := (&Trace{}).Save(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	var full bytes.Buffer
	if err := sampleTrace().Save(&full); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())
	f.Add(full.Bytes()[:len(full.Bytes())-7])
	f.Add(append(bytes.Clone(full.Bytes()), 0xff))
	// A header claiming far more records than the body holds.
	huge := bytes.Clone(full.Bytes())
	binary.LittleEndian.PutUint32(huge[8:], 1<<30)
	f.Add(huge)
	// The version-2 linked format, whole and truncated mid-links. Larger
	// real serializations (emulated benchmark prefixes in both formats)
	// live in testdata/fuzz/FuzzTraceLoad.
	linked := sampleTrace()
	if err := linked.Link(); err != nil {
		f.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := linked.SaveLinked(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v2.Bytes()[:v2.Len()-6])

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := LoadLimit(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		if !tr.Linked {
			t.Fatal("Load returned an unlinked trace")
		}
		for _, save := range []func(*Trace, *bytes.Buffer) error{
			func(tr *Trace, b *bytes.Buffer) error { return tr.Save(b) },
			func(tr *Trace, b *bytes.Buffer) error { return tr.SaveLinked(b) },
		} {
			var out bytes.Buffer
			if err := save(tr, &out); err != nil {
				t.Fatalf("re-saving a loaded trace: %v", err)
			}
			back, err := LoadLimit(bytes.NewReader(out.Bytes()), 1<<16)
			if err != nil {
				t.Fatalf("reloading a re-saved trace: %v", err)
			}
			if !reflect.DeepEqual(back.Records(), tr.Records()) {
				t.Fatal("Save/Load round trip is not a fixed point")
			}
		}
	})
}
