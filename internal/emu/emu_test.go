package emu

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

func run(t *testing.T, src string, budget int) (*Machine, *trace.Trace) {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	tr, m, err := Collect(p, budget)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, tr
}

func TestArithmetic(t *testing.T) {
	m, _ := run(t, `
main:
    addi r1, r0, 100
    addi r2, r0, 7
    add  r3, r1, r2    # 107
    sub  r4, r1, r2    # 93
    mul  r5, r1, r2    # 700
    divu r6, r1, r2    # 14
    remu r7, r1, r2    # 2
    out r3
    out r4
    out r5
    out r6
    out r7
    halt
`, 1000)
	want := []uint64{107, 93, 700, 14, 2}
	for i, w := range want {
		if m.Outputs[i] != w {
			t.Errorf("output %d = %d, want %d", i, m.Outputs[i], w)
		}
	}
}

func TestLogicAndShifts(t *testing.T) {
	m, _ := run(t, `
main:
    addi r1, r0, 0xf0
    addi r2, r0, 0x0f
    and  r3, r1, r2
    or   r4, r1, r2
    xor  r5, r1, r2
    slli r6, r2, 4
    srli r7, r1, 4
    addi r8, r0, -16
    srai r9, r8, 2
    out r3
    out r4
    out r5
    out r6
    out r7
    out r9
    halt
`, 1000)
	negFour := int64(-4)
	want := []uint64{0, 0xff, 0xff, 0xf0, 0x0f, uint64(negFour)}
	for i, w := range want {
		if m.Outputs[i] != w {
			t.Errorf("output %d = %#x, want %#x", i, m.Outputs[i], w)
		}
	}
}

func TestComparisons(t *testing.T) {
	m, _ := run(t, `
main:
    addi r1, r0, -5
    addi r2, r0, 3
    slt  r3, r1, r2    # signed: -5 < 3 -> 1
    sltu r4, r1, r2    # unsigned: huge > 3 -> 0
    slti r5, r2, 10    # 3 < 10 -> 1
    out r3
    out r4
    out r5
    halt
`, 1000)
	want := []uint64{1, 0, 1}
	for i, w := range want {
		if m.Outputs[i] != w {
			t.Errorf("output %d = %d, want %d", i, m.Outputs[i], w)
		}
	}
}

func TestDivideByZero(t *testing.T) {
	m, _ := run(t, `
main:
    addi r1, r0, 9
    divu r2, r1, r0
    remu r3, r1, r0
    out r2
    out r3
    halt
`, 1000)
	if m.Outputs[0] != ^uint64(0) {
		t.Errorf("divu by zero = %#x, want all-ones", m.Outputs[0])
	}
	if m.Outputs[1] != 9 {
		t.Errorf("remu by zero = %d, want 9", m.Outputs[1])
	}
}

func TestLuiAndLi(t *testing.T) {
	m, _ := run(t, `
main:
    lui r1, 2          # 2<<16
    li  r2, 0x123456789
    out r1
    out r2
    halt
`, 1000)
	if m.Outputs[0] != 2<<16 {
		t.Errorf("lui = %#x", m.Outputs[0])
	}
	if m.Outputs[1] != 0x123456789 {
		t.Errorf("li large = %#x", m.Outputs[1])
	}
}

func TestMemoryWidths(t *testing.T) {
	m, _ := run(t, `
.data
buf: .space 32
.text
main:
    la  r1, buf
    li  r2, 0x1122334455667788
    sd  r2, 0(r1)
    ld  r3, 0(r1)
    lw  r4, 0(r1)      # 0x55667788
    lh  r5, 0(r1)      # 0x7788
    lb  r6, 0(r1)      # 0x88
    lb  r7, 7(r1)      # 0x11
    sb  r2, 16(r1)
    lb  r8, 16(r1)     # 0x88
    out r3
    out r4
    out r5
    out r6
    out r7
    out r8
    halt
`, 1000)
	want := []uint64{0x1122334455667788, 0x55667788, 0x7788, 0x88, 0x11, 0x88}
	for i, w := range want {
		if m.Outputs[i] != w {
			t.Errorf("output %d = %#x, want %#x", i, m.Outputs[i], w)
		}
	}
}

func TestDataSegmentLoaded(t *testing.T) {
	m, _ := run(t, `
.data
tbl: .quad 41, 42, 43
.text
main:
    la  r1, tbl
    ld  r2, 8(r1)
    out r2
    halt
`, 1000)
	if m.Outputs[0] != 42 {
		t.Errorf("data load = %d, want 42", m.Outputs[0])
	}
}

func TestGlobalAndStackRegisters(t *testing.T) {
	m, _ := run(t, `
main:
    out gp
    out sp
    halt
`, 1000)
	if m.Outputs[0] != program.DataBase {
		t.Errorf("gp = %#x, want %#x", m.Outputs[0], program.DataBase)
	}
	if m.Outputs[1] != program.StackBase {
		t.Errorf("sp = %#x, want %#x", m.Outputs[1], program.StackBase)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a countdown loop.
	m, tr := run(t, `
main:
    addi r1, r0, 10
    addi r2, r0, 0
loop:
    add  r2, r2, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    out  r2
    halt
`, 1000)
	if m.Outputs[0] != 55 {
		t.Errorf("sum = %d, want 55", m.Outputs[0])
	}
	// Branch taken 9 times, not taken once.
	taken := 0
	for _, r := range tr.Records() {
		if r.Op == isa.BNE && r.Taken {
			taken++
		}
	}
	if taken != 9 {
		t.Errorf("taken branches = %d, want 9", taken)
	}
}

func TestCallReturn(t *testing.T) {
	m, _ := run(t, `
main:
    addi r1, r0, 20
    call double
    out  r1
    halt
double:
    add r1, r1, r1
    ret
`, 1000)
	if m.Outputs[0] != 40 {
		t.Errorf("call/ret result = %d, want 40", m.Outputs[0])
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	m, _ := run(t, `
main:
    addi r0, r0, 99
    out  r0
    halt
`, 1000)
	if m.Outputs[0] != 0 {
		t.Errorf("r0 = %d, want 0", m.Outputs[0])
	}
}

func TestBudgetExhaustion(t *testing.T) {
	p, err := asm.Assemble("spin", `
main:
    beq r0, r0, main
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	err = m.Run(100, nil)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if m.Steps != 100 {
		t.Errorf("steps = %d, want 100", m.Steps)
	}
	// Collect tolerates budget exhaustion.
	tr, _, err := Collect(p, 50)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if tr.Len() != 50 {
		t.Errorf("trace len = %d, want 50", tr.Len())
	}
}

func TestStepAfterHalt(t *testing.T) {
	p, _ := asm.Assemble("h", "main:\n halt\n")
	m := New(p)
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("not halted")
	}
	if _, err := m.Step(); err == nil {
		t.Error("step after halt succeeded")
	}
}

func TestPCOutOfRange(t *testing.T) {
	p, _ := asm.Assemble("j", `
main:
    jalr r0, r0, 999
    halt
`)
	m := New(p)
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err == nil {
		t.Error("wild jump not caught")
	}
}

func TestUnmappedMemoryReadsZero(t *testing.T) {
	m, _ := run(t, `
main:
    li  r1, 0x500000
    ld  r2, 0(r1)
    out r2
    halt
`, 1000)
	if m.Outputs[0] != 0 {
		t.Errorf("unmapped read = %d, want 0", m.Outputs[0])
	}
}

func TestTraceRecordsControlFlow(t *testing.T) {
	_, tr := run(t, `
main:
    beq r0, r0, skip
    nop
skip:
    halt
`, 100)
	if tr.Len() != 2 {
		t.Fatalf("trace len = %d, want 2", tr.Len())
	}
	br := tr.At(0)
	if !br.Taken || br.NextPC != 2 {
		t.Errorf("branch record = %+v", br)
	}
}
