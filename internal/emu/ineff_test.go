package emu

import (
	"context"
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/trace"
)

// TestIneffHintSilentStore checks that the emulator marks a store that
// rewrites the bytes already in memory, and only that store.
func TestIneffHintSilentStore(t *testing.T) {
	_, tr := run(t, `
main:
    addi r1, r0, 4096
    addi r2, r0, 7
    sd   r2, 0(r1)     # first store to fresh memory...
    sd   r2, 0(r1)     # ...then the same value again: silent
    addi r3, r0, 9
    sd   r3, 0(r1)     # different value: not silent
    sw   r3, 0(r1)     # low 4 bytes already 9: silent at width 4
    halt
`, 1000)
	var silents []int32
	for i := 0; i < tr.Len(); i++ {
		r := tr.At(i)
		if r.Ineff&trace.HintSilentStore != 0 {
			if !r.Op.IsStore() {
				t.Errorf("seq %d: silent-store hint on %v", i, r.Op)
			}
			silents = append(silents, r.PC)
		}
	}
	if len(silents) != 2 || silents[0] != 3 || silents[1] != 6 {
		t.Errorf("silent stores at pcs %v, want [3 6]", silents)
	}
}

// TestIneffHintSilentStoreZeroToFresh checks the boundary case the
// zero-filled memory model creates: storing zero to untouched memory is
// silent (the bytes were already zero).
func TestIneffHintSilentStoreZeroToFresh(t *testing.T) {
	_, tr := run(t, `
main:
    addi r1, r0, 8192
    sd   r0, 0(r1)
    halt
`, 100)
	r := tr.At(1)
	if r.Ineff&trace.HintSilentStore == 0 {
		t.Error("store of zero to fresh memory not marked silent")
	}
}

// TestIneffHintTrivialOps checks the result-equals-input hints across the
// listed trivial patterns and their non-trivial controls.
func TestIneffHintTrivialOps(t *testing.T) {
	_, tr := run(t, `
main:
    addi r1, r0, 42
    add  r2, r1, r0    # x+0: result == rs1 value (and == rs2? 42 != 0)
    or   r3, r1, r0    # x|0: trivial
    and  r4, r1, r1    # x&x: trivial both sources
    addi r5, r1, 0     # mov-self idiom: trivial
    addi r6, r1, 1     # not trivial
    add  r7, r1, r1    # 42+42: not trivial
    mul  r8, r1, r0    # x*0 = 0 == rs2 value: trivial
    halt
`, 1000)
	eq := trace.HintResultEqRs1 | trace.HintResultEqRs2
	wantTrivial := map[int32]bool{1: true, 2: true, 3: true, 4: true, 7: true}
	for i := 0; i < tr.Len(); i++ {
		r := tr.At(i)
		if r.Op == isa.HALT || r.PC == 0 {
			continue
		}
		got := r.Ineff&eq != 0
		if got != wantTrivial[r.PC] {
			t.Errorf("pc %d (%v): trivial hint = %v, want %v", r.PC, r.Op, got, wantTrivial[r.PC])
		}
	}
	// x&x must be flagged equal to both sources.
	if r := tr.At(3); r.Ineff&eq != eq {
		t.Errorf("x&x hints = %#x, want both eq bits", r.Ineff)
	}
}

// TestIneffHintNotOnControl checks that link-writing control instructions
// never carry trivial-op hints even when the link value collides with an
// operand.
func TestIneffHintNotOnControl(t *testing.T) {
	_, tr := run(t, `
main:
    addi r1, r0, 1
    jal  r2, target
    halt
target:
    beq  r1, r1, back  # control: no hints regardless of operand equality
back:
    halt
`, 1000)
	for i := 0; i < tr.Len(); i++ {
		r := tr.At(i)
		if r.Op.IsControl() && r.Ineff != 0 {
			t.Errorf("seq %d: control op %v carries hint %#x", i, r.Op, r.Ineff)
		}
	}
}

// alwaysCancelled is a context whose Err is already non-nil; its Done
// channel is closed from the start, so RunCtx's poll observes the
// cancellation deterministically at the first opportunity.
func alwaysCancelled() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestRunCtxAbortLatency pins the cancellation bound the service tier
// relies on: a cancelled RunCtx commits at most CtxCheckInterval
// instructions past the poll that observes it — strictly under one trace
// chunk — and the interval constant itself stays within a chunk.
func TestRunCtxAbortLatency(t *testing.T) {
	if CtxCheckInterval > trace.ChunkSize/2 {
		t.Fatalf("CtxCheckInterval %d exceeds half a trace chunk (%d)", CtxCheckInterval, trace.ChunkSize)
	}
	if CtxCheckInterval&(CtxCheckInterval-1) != 0 {
		t.Fatalf("CtxCheckInterval %d is not a power of two", CtxCheckInterval)
	}
	p, err := asm.Assemble("spin", `
main:
    addi r1, r0, 1
loop:
    add  r2, r2, r1
    bne  r1, r0, loop
    halt
`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	// Pre-cancelled context: the first poll fires before anything commits.
	m := New(p)
	committed := 0
	err = m.RunCtx(alwaysCancelled(), 1<<20, func(*trace.Record) { committed++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if committed != 0 {
		t.Errorf("pre-cancelled run committed %d instructions, want 0", committed)
	}

	// Mid-run cancellation between polls: the abort lands at the next
	// poll boundary, so the overshoot past the cancel point is bounded by
	// one interval.
	const cancelAt = 100
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m = New(p)
	committed = 0
	err = m.RunCtx(ctx, 1<<20, func(*trace.Record) {
		committed++
		if committed == cancelAt {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if over := committed - cancelAt; over < 0 || over > CtxCheckInterval {
		t.Errorf("aborted run overshot the cancel point by %d instructions, want <= %d",
			over, CtxCheckInterval)
	}
	if committed >= trace.ChunkSize {
		t.Errorf("abort latency %d reached a full chunk (%d)", committed, trace.ChunkSize)
	}
}
