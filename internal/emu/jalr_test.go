package emu

import (
	"testing"

	"repro/internal/isa"
)

func TestJALRComputedTarget(t *testing.T) {
	// Jump through a register-computed table of instruction indexes.
	m, _ := run(t, `
main:
    addi r1, r0, 5     # target pc of "five"
    jalr r2, r1, 0     # jump to pc 5, link in r2
dead:
    halt               # skipped
    nop
    nop
five:
    out r2             # link = pc of "dead" (2)
    halt
`, 100)
	if len(m.Outputs) != 1 || m.Outputs[0] != 2 {
		t.Fatalf("link register = %v, want [2]", m.Outputs)
	}
}

func TestJALZeroLinkDiscarded(t *testing.T) {
	m, _ := run(t, `
main:
    j skip
    nop
skip:
    out r0
    halt
`, 100)
	if m.Outputs[0] != 0 {
		t.Errorf("r0 after jal r0 = %d", m.Outputs[0])
	}
}

func TestNestedCallDepth(t *testing.T) {
	// Three-deep manual call nest with link-register spilling.
	m, _ := run(t, `
main:
    addi r10, r0, 1
    call a
    out  r10
    halt
a:
    mv   r20, ra
    slli r10, r10, 1    # *2
    call b
    mv   ra, r20
    ret
b:
    mv   r21, ra
    slli r10, r10, 1    # *2
    call c
    mv   ra, r21
    ret
c:
    addi r10, r10, 3    # +3
    ret
`, 1000)
	if m.Outputs[0] != 7 { // ((1*2)*2)+3
		t.Fatalf("nested calls = %d, want 7", m.Outputs[0])
	}
}

func TestTraceRecordsJumps(t *testing.T) {
	_, tr := run(t, `
main:
    call f
    halt
f:
    ret
`, 100)
	if call := tr.At(0); call.Op != isa.JAL || int(call.NextPC) != 2 {
		t.Errorf("call record = %+v", call)
	}
	if ret := tr.At(1); ret.Op != isa.JALR || int(ret.NextPC) != 1 {
		t.Errorf("ret record = %+v", ret)
	}
}
