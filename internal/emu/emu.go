// Package emu is the architectural (functional) emulator for r64. It
// executes a program.Program instruction by instruction, maintaining the
// register file and a sparse paged memory, and can stream a dynamic trace
// of committed instructions to a sink.
//
// The emulator is the reference semantics for the whole repository: the
// compiler's correctness tests compare emulator outputs across optimization
// levels, and the pipeline timing model consumes the emulator's trace.
package emu

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/deadness"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/trace"
)

// ErrBudget is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrBudget = errors.New("emu: instruction budget exhausted")

const pageBits = 12
const pageSize = 1 << pageBits

type page [pageSize]byte

// Machine is one r64 hardware context. Create it with New.
type Machine struct {
	prog *program.Program

	PC    int
	Regs  [isa.NumRegs]uint64
	mem   map[uint64]*page
	Steps int
	// Outputs accumulates the values reported by OUT, in order.
	Outputs []uint64
	Halted  bool
}

// New creates a machine with the program's data segment loaded at
// program.DataBase, RGbl pointing at it, RSP at program.StackBase, and the
// PC at the program entry.
func New(p *program.Program) *Machine {
	m := &Machine{
		prog: p,
		PC:   p.Entry,
		mem:  make(map[uint64]*page),
	}
	for i, b := range p.Data {
		m.StoreByte(program.DataBase+uint64(i), b)
	}
	m.Regs[isa.RGbl] = program.DataBase
	m.Regs[isa.RSP] = program.StackBase
	return m
}

// LoadByte reads one byte of memory (unmapped memory reads as zero).
func (m *Machine) LoadByte(addr uint64) byte {
	pg, ok := m.mem[addr>>pageBits]
	if !ok {
		return 0
	}
	return pg[addr&(pageSize-1)]
}

// StoreByte writes one byte of memory, allocating the page on demand.
func (m *Machine) StoreByte(addr uint64, b byte) {
	key := addr >> pageBits
	pg, ok := m.mem[key]
	if !ok {
		pg = new(page)
		m.mem[key] = pg
	}
	pg[addr&(pageSize-1)] = b
}

// Load reads width bytes little-endian, zero-extended to 64 bits.
func (m *Machine) Load(addr uint64, width int) uint64 {
	off := addr & (pageSize - 1)
	if off+uint64(width) <= pageSize {
		// Fast path: the access stays within one page.
		pg, ok := m.mem[addr>>pageBits]
		if !ok {
			return 0
		}
		var v uint64
		for i := 0; i < width; i++ {
			v |= uint64(pg[off+uint64(i)]) << (8 * i)
		}
		return v
	}
	var v uint64
	for i := 0; i < width; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Store writes the low width bytes of v little-endian.
func (m *Machine) Store(addr uint64, width int, v uint64) {
	off := addr & (pageSize - 1)
	if off+uint64(width) <= pageSize {
		key := addr >> pageBits
		pg, ok := m.mem[key]
		if !ok {
			pg = new(page)
			m.mem[key] = pg
		}
		for i := 0; i < width; i++ {
			pg[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	for i := 0; i < width; i++ {
		m.StoreByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

func (m *Machine) reg(r isa.Reg) uint64 {
	if r == isa.RZero {
		return 0
	}
	return m.Regs[r]
}

func (m *Machine) setReg(r isa.Reg, v uint64) {
	if r != isa.RZero {
		m.Regs[r] = v
	}
}

// Step executes one instruction and returns its trace record. Stepping a
// halted machine or running off the end of the text is an error.
func (m *Machine) Step() (trace.Record, error) {
	var rec trace.Record
	if err := m.step(&rec); err != nil {
		return trace.Record{}, err
	}
	return rec, nil
}

// step executes one instruction, writing its trace record in place (the
// hot path: Run reuses one record value across the whole run rather than
// zeroing and copying an 80-byte struct per committed instruction). Every
// field a consumer reads is (re)assigned; the producer-link fields are
// reset to their raw-trace zero values.
func (m *Machine) step(rec *trace.Record) error {
	if m.Halted {
		return fmt.Errorf("emu: step after halt at pc=%d", m.PC)
	}
	if m.PC < 0 || m.PC >= len(m.prog.Insts) {
		return fmt.Errorf("emu: pc %d out of range [0,%d)", m.PC, len(m.prog.Insts))
	}
	in := m.prog.Insts[m.PC]
	rec.PC, rec.Op, rec.Rd, rec.Rs1, rec.Rs2 = int32(m.PC), in.Op, in.Rd, in.Rs1, in.Rs2
	rec.Taken = false
	rec.Addr, rec.Width = 0, 0
	rec.Src1, rec.Src2, rec.NumMemSrcs = 0, 0, 0
	rec.Ineff = 0
	a, b := m.reg(in.Rs1), m.reg(in.Rs2)
	imm := uint64(int64(in.Imm)) // sign-extended
	next := m.PC + 1

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		m.setReg(in.Rd, a+b)
	case isa.SUB:
		m.setReg(in.Rd, a-b)
	case isa.AND:
		m.setReg(in.Rd, a&b)
	case isa.OR:
		m.setReg(in.Rd, a|b)
	case isa.XOR:
		m.setReg(in.Rd, a^b)
	case isa.SLL:
		m.setReg(in.Rd, a<<(b&63))
	case isa.SRL:
		m.setReg(in.Rd, a>>(b&63))
	case isa.SRA:
		m.setReg(in.Rd, uint64(int64(a)>>(b&63)))
	case isa.SLT:
		m.setReg(in.Rd, boolTo64(int64(a) < int64(b)))
	case isa.SLTU:
		m.setReg(in.Rd, boolTo64(a < b))
	case isa.MUL:
		m.setReg(in.Rd, a*b)
	case isa.DIVU:
		if b == 0 {
			m.setReg(in.Rd, ^uint64(0))
		} else {
			m.setReg(in.Rd, a/b)
		}
	case isa.REMU:
		if b == 0 {
			m.setReg(in.Rd, a)
		} else {
			m.setReg(in.Rd, a%b)
		}
	case isa.ADDI:
		m.setReg(in.Rd, a+imm)
	case isa.ANDI:
		m.setReg(in.Rd, a&imm)
	case isa.ORI:
		m.setReg(in.Rd, a|imm)
	case isa.XORI:
		m.setReg(in.Rd, a^imm)
	case isa.SLTI:
		m.setReg(in.Rd, boolTo64(int64(a) < int64(imm)))
	case isa.SLLI:
		m.setReg(in.Rd, a<<(imm&63))
	case isa.SRLI:
		m.setReg(in.Rd, a>>(imm&63))
	case isa.SRAI:
		m.setReg(in.Rd, uint64(int64(a)>>(imm&63)))
	case isa.LUI:
		m.setReg(in.Rd, uint64(int64(in.Imm))<<16)
	case isa.LB, isa.LH, isa.LW, isa.LD:
		w := in.Op.MemWidth()
		addr := a + imm
		m.setReg(in.Rd, m.Load(addr, w))
		rec.Addr, rec.Width = addr, uint8(w)
	case isa.SB, isa.SH, isa.SW, isa.SD:
		w := in.Op.MemWidth()
		addr := a + imm
		// Silent-store observation: the emulator is the only component
		// that sees memory values, so it records here whether the store
		// wrote the bytes already in place. Load zero-extends the low w
		// bytes, so masking b to the access width makes the comparison
		// exact for every width.
		if m.Load(addr, w) == b&widthMask(w) {
			rec.Ineff = trace.HintSilentStore
		}
		m.Store(addr, w, b)
		rec.Addr, rec.Width = addr, uint8(w)
	case isa.BEQ:
		if a == b {
			next = m.PC + 1 + int(in.Imm)
			rec.Taken = true
		}
	case isa.BNE:
		if a != b {
			next = m.PC + 1 + int(in.Imm)
			rec.Taken = true
		}
	case isa.BLT:
		if int64(a) < int64(b) {
			next = m.PC + 1 + int(in.Imm)
			rec.Taken = true
		}
	case isa.BGE:
		if int64(a) >= int64(b) {
			next = m.PC + 1 + int(in.Imm)
			rec.Taken = true
		}
	case isa.JAL:
		m.setReg(in.Rd, uint64(m.PC+1))
		next = m.PC + 1 + int(in.Imm)
	case isa.JALR:
		t := a + imm
		m.setReg(in.Rd, uint64(m.PC+1))
		next = int(t)
	case isa.OUT:
		m.Outputs = append(m.Outputs, a)
	case isa.HALT:
		m.Halted = true
		next = m.PC
	default:
		return fmt.Errorf("emu: pc=%d: unimplemented opcode %v", m.PC, in.Op)
	}

	// Trivial-op observation: a non-control, non-load result that equals
	// the pre-instruction value of a register source could have been
	// satisfied by a rename-table remap (x+0, x|0, x&x, mul-by-1, and the
	// 0*x family all land here). a and b hold the operand values read
	// before the destination write, so rd==rs cases compare correctly.
	if f := in.Op.Flags(); f&(isa.FlagHasDest|isa.FlagControl|isa.FlagLoad) == isa.FlagHasDest &&
		in.Rd != isa.RZero {
		v := m.Regs[in.Rd]
		if f&isa.FlagReadsRs1 != 0 && v == a {
			rec.Ineff |= trace.HintResultEqRs1
		}
		if f&isa.FlagReadsRs2 != 0 && v == b {
			rec.Ineff |= trace.HintResultEqRs2
		}
	}

	rec.NextPC = int32(next)
	m.PC = next
	m.Steps++
	return nil
}

// widthMask returns the value mask of a width-byte access.
func widthMask(w int) uint64 {
	if w >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*w) - 1
}

// Run executes until HALT or until budget instructions have committed,
// passing each record to sink (which may be nil; the record is only valid
// for the duration of the call). It returns ErrBudget when the budget
// expires first. When a fault injector is installed, every committed
// instruction is a firing opportunity at faults.SiteEmuStep; the injector
// is sampled once at entry so the clean path stays branch-free.
func (m *Machine) Run(budget int, sink func(*trace.Record)) error {
	if inj := faults.Active(); inj != nil {
		return m.runInjected(inj, budget, sink)
	}
	var rec trace.Record
	for !m.Halted {
		if m.Steps >= budget {
			return ErrBudget
		}
		if err := m.step(&rec); err != nil {
			return err
		}
		if sink != nil {
			sink(&rec)
		}
	}
	return nil
}

// CtxCheckInterval is the cancellation poll interval of RunCtx: the
// context is consulted once per this many committed instructions, so an
// emulation aborts within microseconds of cancellation while the hot
// loop stays free of per-step channel reads. It is deliberately at most
// half a trace chunk (trace.ChunkSize), so a cancelled collection never
// commits a full chunk past the poll that observes the cancellation —
// the bound the service tier's drain and request-timeout paths rely on
// (DESIGN.md §10). It must be a power of two; RunCtx masks with it.
const CtxCheckInterval = 1 << 12

const ctxCheckMask = CtxCheckInterval - 1

// RunCtx is Run with cooperative cancellation: it polls ctx every few
// thousand committed instructions and returns ctx.Err() when the context
// ends mid-run. The fault-opportunity sequence at faults.SiteEmuStep is
// identical to Run's, so a run that completes under RunCtx is
// bit-identical to the same run under Run.
func (m *Machine) RunCtx(ctx context.Context, budget int, sink func(*trace.Record)) error {
	if ctx == nil || ctx.Done() == nil {
		return m.Run(budget, sink)
	}
	inj := faults.Active()
	var rec trace.Record
	for !m.Halted {
		if m.Steps >= budget {
			return ErrBudget
		}
		if m.Steps&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if inj != nil {
			if err := inj.Fire(faults.SiteEmuStep); err != nil {
				return fmt.Errorf("emu: step %d: %w", m.Steps, err)
			}
		}
		if err := m.step(&rec); err != nil {
			return err
		}
		if sink != nil {
			sink(&rec)
		}
	}
	return nil
}

// runInjected is Run with a per-step fault opportunity.
func (m *Machine) runInjected(inj *faults.Injector, budget int, sink func(*trace.Record)) error {
	var rec trace.Record
	for !m.Halted {
		if m.Steps >= budget {
			return ErrBudget
		}
		if err := inj.Fire(faults.SiteEmuStep); err != nil {
			return fmt.Errorf("emu: step %d: %w", m.Steps, err)
		}
		if err := m.step(&rec); err != nil {
			return err
		}
		if sink != nil {
			sink(&rec)
		}
	}
	return nil
}

// collectCap bounds how much storage the budget hint pre-sizes (the same
// cap the pre-columnar substrate used for its record slice).
const collectCap = 1 << 20

// Collect runs the program to completion (or budget) and returns the linked
// trace. A budget overrun is not an error here: the partial trace is still
// analyzable, mirroring how architecture studies simulate a fixed
// instruction window of a longer-running benchmark. Hard execution faults
// still return an error.
func Collect(p *program.Program, budget int) (*trace.Trace, *Machine, error) {
	t, m, err := collect(p, budget)
	if err != nil {
		return nil, nil, err
	}
	if err := t.Link(); err != nil {
		return nil, nil, err
	}
	return t, m, nil
}

// CollectAnalyzed runs the program like Collect and feeds completed trace
// chunks straight into the fused link+analyze pass — serially in-line by
// default on one CPU, or through the sharded analyzer's chunk scheduler
// when more cores (or an explicit shard count) are available. Results are
// bit-identical to analyzing after the fact in either mode.
func CollectAnalyzed(p *program.Program, budget int) (*trace.Trace, *deadness.Analysis, *Machine, error) {
	return CollectAnalyzedShardsObserved(p, budget, 0, nil, "")
}

// CollectAnalyzedShards is CollectAnalyzed with an explicit analyze shard
// count: shards <= 0 means deadness.DefaultShards (one per CPU), 1 forces
// the serial in-line pass, and larger values spread the forward and
// reverse analysis passes across that many shard workers.
func CollectAnalyzedShards(p *program.Program, budget, shards int) (*trace.Trace, *deadness.Analysis, *Machine, error) {
	return CollectAnalyzedShardsObserved(p, budget, shards, nil, "")
}

// CollectAnalyzedObserved is CollectAnalyzed with phase observability
// through the (nil-safe) collector.
func CollectAnalyzedObserved(p *program.Program, budget int, mc *metrics.Collector, name string) (*trace.Trace, *deadness.Analysis, *Machine, error) {
	return CollectAnalyzedShardsObserved(p, budget, 0, mc, name)
}

// CollectAnalyzedShardsObserved is the full streaming emulate→analyze
// entry point: PhaseEmulate spans the producer run (with the serial
// analysis fused in-line, or chunk dispatch to the shard workers), and
// PhaseAnalyze spans the non-overlapped tail — boundary reconciliation
// plus the reverse usefulness pass — which is exactly the analysis time
// on the critical path.
func CollectAnalyzedShardsObserved(p *program.Program, budget, shards int, mc *metrics.Collector, name string) (*trace.Trace, *deadness.Analysis, *Machine, error) {
	return CollectAnalyzedShardsCtx(context.Background(), p, budget, shards, mc, name)
}

// CollectAnalyzedShardsCtx is CollectAnalyzedShardsObserved with
// cooperative cancellation: when ctx ends mid-collection the emulation
// aborts within a few thousand instructions, every pooled resource the
// partial run holds — the trace's chunk arenas and the analyzer's
// writer-map pages — is released, and ctx.Err() is returned with nil
// results. A run that completes is bit-identical to an uncancellable one.
func CollectAnalyzedShardsCtx(ctx context.Context, p *program.Program, budget, shards int, mc *metrics.Collector, name string) (*trace.Trace, *deadness.Analysis, *Machine, error) {
	if shards <= 0 {
		shards = deadness.DefaultShards()
	}
	if shards == 1 {
		return collectAnalyzedSerial(ctx, p, budget, mc, name)
	}
	return collectAnalyzedSharded(ctx, p, budget, shards, mc, name)
}

// collectAnalyzedSerial runs the fused pass in-line in the emulator's
// sink: on a single CPU a consumer goroutine buys no overlap and costs
// scheduling and channel traffic, so each completed chunk is analyzed
// synchronously instead. The stream's fact arrays grow with the actual
// trace (roughly doubling per growth step), not the budget hint — a
// budget-sized hint over-allocated ~7 MB per short run.
func collectAnalyzedSerial(ctx context.Context, p *program.Program, budget int, mc *metrics.Collector, name string) (*trace.Trace, *deadness.Analysis, *Machine, error) {
	m := New(p)
	t := trace.NewWithCapacity(min(budget, collectCap))
	st := deadness.NewStream(0)
	var aErr error
	sent := 0
	sp := mc.Start(metrics.PhaseEmulate, name)
	runErr := m.RunCtx(ctx, budget, func(r *trace.Record) {
		t.Push(r)
		if aErr == nil && t.Len()>>trace.ChunkBits > sent {
			aErr = st.Chunk(t.Chunk(sent))
			sent++
		}
	})
	sp.End(int64(t.Len()))

	sp = mc.Start(metrics.PhaseAnalyze, name)
	if aErr == nil && sent < t.NumChunks() {
		aErr = st.Chunk(t.Chunk(sent))
	}
	if runErr != nil && !errors.Is(runErr, ErrBudget) {
		aErr = runErr
	}
	if aErr != nil {
		st.Close()
		t.Release()
		sp.End(0)
		return nil, nil, nil, aErr
	}
	a := st.Finish(t)
	sp.End(int64(t.Len()))
	return t, a, m, nil
}

// collectAnalyzedSharded feeds completed chunks to the sharded analyzer's
// scheduler as they fill, so every shard's forward pass overlaps both the
// emulator and the other shards; reconciliation and the reverse pass run
// after emulation ends.
func collectAnalyzedSharded(ctx context.Context, p *program.Program, budget, shards int, mc *metrics.Collector, name string) (*trace.Trace, *deadness.Analysis, *Machine, error) {
	m := New(p)
	t := trace.NewWithCapacity(min(budget, collectCap))
	ss := deadness.NewShardedStream(min(budget, collectCap), shards)
	sent := 0
	sp := mc.Start(metrics.PhaseEmulate, name)
	runErr := m.RunCtx(ctx, budget, func(r *trace.Record) {
		t.Push(r)
		if t.Len()>>trace.ChunkBits > sent {
			ss.Chunk(t.Chunk(sent))
			sent++
		}
	})
	sp.End(int64(t.Len()))

	sp = mc.Start(metrics.PhaseAnalyze, name)
	if sent < t.NumChunks() {
		ss.Chunk(t.Chunk(sent))
	}
	if runErr != nil && !errors.Is(runErr, ErrBudget) {
		// Join the workers and give back every pooled resource the
		// aborted run holds: the shards' writer-map pages and the trace's
		// chunk arenas.
		ss.Close()
		t.Release()
		sp.End(0)
		return nil, nil, nil, runErr
	}
	a, err := ss.Finish(t)
	if err != nil {
		t.Release()
		sp.End(0)
		return nil, nil, nil, err
	}
	sp.End(int64(t.Len()))
	return t, a, m, nil
}

// collect emits the raw (unlinked) trace of one run, pre-sized from the
// budget hint so collection never grows from zero.
func collect(p *program.Program, budget int) (*trace.Trace, *Machine, error) {
	m := New(p)
	t := trace.NewWithCapacity(min(budget, collectCap))
	err := m.Run(budget, t.Push)
	if err != nil && !errors.Is(err, ErrBudget) {
		return nil, nil, err
	}
	return t, m, nil
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
