// Package cliflags factors the workspace-construction flags every tool
// shares — worker and shard counts, the artifact-cache budgets, and the
// persistent disk tier — so the binaries register one consistent flag
// surface and build their workspace the same way. It also centralizes
// arming the FAULTS environment injector so a typo'd rule fails loudly
// at startup in every tool, not just the ones that remembered to check.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bytesize"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// WorkspaceFlags holds the parsed values of the shared workspace flags.
// Register it on a FlagSet before Parse; call Open after.
type WorkspaceFlags struct {
	tool string

	Budget        int
	Workers       int
	AnalyzeShards int
	CacheBudget   string
	CacheDir      string
	DiskBudget    string
	RemoteCache   string
}

// RegisterWorkspace registers the shared workspace flags on fs:
// -n, -j, -analyze-shards, -cache-budget, -cache-dir, -disk-budget, and
// -remote-cache. The tool name prefixes every error Open reports.
func RegisterWorkspace(fs *flag.FlagSet, tool string) *WorkspaceFlags {
	f := &WorkspaceFlags{tool: tool}
	fs.IntVar(&f.Budget, "n", core.DefaultBudget, "per-benchmark dynamic instruction budget")
	fs.IntVar(&f.Workers, "j", 0, "max concurrently executing heavy tasks (0 = GOMAXPROCS)")
	fs.IntVar(&f.AnalyzeShards, "analyze-shards", 0, "analyze-stage shard count per profile build (0 = GOMAXPROCS, 1 = serial)")
	fs.StringVar(&f.CacheBudget, "cache-budget", "", "artifact-cache resident-byte budget, e.g. 256MiB (empty or 0 = unlimited)")
	fs.StringVar(&f.CacheDir, "cache-dir", "", "persistent artifact-cache directory shared across runs (empty = memory only)")
	fs.StringVar(&f.DiskBudget, "disk-budget", "", "disk byte budget for -cache-dir, e.g. 1GiB (empty or 0 = unlimited)")
	fs.StringVar(&f.RemoteCache, "remote-cache", "", "base URL of a deadd daemon to use as a remote artifact tier, e.g. http://host:8080 (empty = none)")
	return f
}

// Open validates the flag values and builds the workspace they describe:
// budgets parsed with binary suffixes, the disk tier attached when
// -cache-dir is set, and a warm deadd daemon attached as the remote
// artifact tier when -remote-cache is set (lookup order: memory, disk,
// remote, build). Errors carry the tool name so they read as usage
// errors when printed bare.
func (f *WorkspaceFlags) Open() (*core.Workspace, error) {
	cacheBytes, err := bytesize.Parse(f.CacheBudget)
	if err != nil {
		return nil, fmt.Errorf("%s: -cache-budget: %w", f.tool, err)
	}
	diskBytes, err := bytesize.Parse(f.DiskBudget)
	if err != nil {
		return nil, fmt.Errorf("%s: -disk-budget: %w", f.tool, err)
	}
	if f.CacheDir == "" && diskBytes != 0 {
		return nil, fmt.Errorf("%s: -disk-budget requires -cache-dir", f.tool)
	}
	w := core.NewWorkspaceWorkers(f.Budget, f.Workers)
	w.AnalyzeShards = f.AnalyzeShards
	w.CacheBudget = cacheBytes
	if f.CacheDir != "" {
		if err := w.OpenDiskCache(f.CacheDir, diskBytes); err != nil {
			return nil, fmt.Errorf("%s: %w", f.tool, err)
		}
	}
	if f.RemoteCache != "" {
		rc, err := client.New(f.RemoteCache)
		if err != nil {
			return nil, fmt.Errorf("%s: -remote-cache: %w", f.tool, err)
		}
		w.SetRemoteTier(rc)
	}
	return w, nil
}

// ArmFaults reads the FAULTS / FAULTS_SEED environment, arms the global
// injector, and reports the armed sites on report (nil = os.Stderr). A
// malformed spec — including an unknown site name — is returned as an
// error quoting the offending rule, so a typo fails the tool at startup
// instead of silently never firing. Returns whether an injector was
// armed.
func ArmFaults(mc *metrics.Collector, report io.Writer) (bool, error) {
	inj, err := faults.FromEnv()
	if err != nil {
		return false, err
	}
	if inj == nil {
		return false, nil
	}
	inj.Metrics = mc
	faults.Set(inj)
	if report == nil {
		report = os.Stderr
	}
	fmt.Fprintf(report, "fault injection armed at %d site(s) via $%s\n",
		len(inj.Sites()), faults.EnvSpec)
	return true, nil
}
