package cliflags

import (
	"flag"
	"io"
	"strings"
	"testing"

	"repro/internal/faults"
)

func newFlagSet(t *testing.T, args ...string) *WorkspaceFlags {
	t.Helper()
	fs := flag.NewFlagSet("testtool", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := RegisterWorkspace(fs, "testtool")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f
}

func TestOpenDefaults(t *testing.T) {
	f := newFlagSet(t)
	w, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("nil workspace")
	}
}

func TestOpenDiskTier(t *testing.T) {
	dir := t.TempDir()
	f := newFlagSet(t, "-cache-dir", dir, "-disk-budget", "4MiB", "-cache-budget", "1MiB", "-j", "2")
	w, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	if w.CacheBudget != 1<<20 {
		t.Errorf("CacheBudget = %d, want 1MiB", w.CacheBudget)
	}
	if got := w.Pool().Workers(); got != 2 {
		t.Errorf("workers = %d, want 2", got)
	}
}

func TestOpenRemoteTier(t *testing.T) {
	f := newFlagSet(t, "-remote-cache", "http://127.0.0.1:7311")
	w, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	if !w.RemoteTierAttached() {
		t.Error("remote tier not attached with -remote-cache set")
	}
	if w2, err := newFlagSet(t).Open(); err != nil || w2.RemoteTierAttached() {
		t.Errorf("remote tier attached without -remote-cache (err %v)", err)
	}
}

func TestOpenErrorsCarryToolName(t *testing.T) {
	cases := [][]string{
		{"-cache-budget", "12zz"},
		{"-disk-budget", "12zz"},
		{"-disk-budget", "1MiB"}, // without -cache-dir
		{"-remote-cache", "ftp://nope"},
		{"-remote-cache", ":::"},
	}
	for _, args := range cases {
		f := newFlagSet(t, args...)
		if _, err := f.Open(); err == nil {
			t.Errorf("args %v: no error", args)
		} else if !strings.Contains(err.Error(), "testtool") {
			t.Errorf("args %v: error %q lacks tool name", args, err)
		}
	}
}

func TestArmFaults(t *testing.T) {
	t.Cleanup(func() { faults.Set(nil) })

	t.Setenv(faults.EnvSpec, "")
	if armed, err := ArmFaults(nil, io.Discard); err != nil || armed {
		t.Errorf("empty spec: armed=%v err=%v", armed, err)
	}

	t.Setenv(faults.EnvSpec, "pool.task:transient:0.1")
	armed, err := ArmFaults(nil, io.Discard)
	if err != nil || !armed {
		t.Fatalf("valid spec: armed=%v err=%v", armed, err)
	}
	faults.Set(nil)

	// A typo'd site name must fail arming with the rule quoted, so every
	// tool that routes through ArmFaults surfaces it at startup.
	const bad = "pool.tsk:transient:0.1"
	t.Setenv(faults.EnvSpec, bad)
	if _, err := ArmFaults(nil, io.Discard); err == nil {
		t.Fatal("typo'd site accepted")
	} else if !strings.Contains(err.Error(), `"`+bad+`"`) {
		t.Errorf("error %q does not quote the offending rule", err)
	}
}
