// Golden-equivalence guard for the fused trace substrate: the single-pass
// deadness.LinkAndAnalyze must reproduce, byte for byte, what the legacy
// two-pass trace.Link + deadness.Analyze computes — producer links, every
// Analysis fact, and the pipeline statistics simulated on top — across the
// full workload suite. The fusion changes when facts are computed, never
// what is computed.
package repro_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/deadness"
	"repro/internal/emu"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

// collectRaw emulates a suite benchmark without linking.
func collectRaw(t *testing.T, prof workload.Profile, budget int) *trace.Trace {
	t.Helper()
	prog, _, err := prof.Compile(nil)
	if err != nil {
		t.Fatalf("%s: compile: %v", prof.Name, err)
	}
	m := emu.New(prog)
	tr := &trace.Trace{}
	if err := m.Run(budget, tr.Append); err != nil && !errors.Is(err, emu.ErrBudget) {
		t.Fatalf("%s: run: %v", prof.Name, err)
	}
	return tr
}

func cloneTrace(tr *trace.Trace) *trace.Trace {
	return &trace.Trace{Recs: append([]trace.Record(nil), tr.Recs...), Linked: tr.Linked}
}

func TestFusedAnalysisMatchesLegacyTwoPass(t *testing.T) {
	const budget = 120_000
	for _, prof := range workload.Suite() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			raw := collectRaw(t, prof, budget)

			legacyTr := cloneTrace(raw)
			if err := legacyTr.Link(); err != nil {
				t.Fatal(err)
			}
			legacy, err := deadness.Analyze(legacyTr)
			if err != nil {
				t.Fatal(err)
			}

			fusedTr := cloneTrace(raw)
			fused, err := deadness.LinkAndAnalyze(fusedTr)
			if err != nil {
				t.Fatal(err)
			}

			if !fusedTr.Linked {
				t.Error("fused trace not marked linked")
			}
			for seq := range legacyTr.Recs {
				l, f := &legacyTr.Recs[seq], &fusedTr.Recs[seq]
				if *l != *f {
					t.Fatalf("seq %d: fused record %+v, legacy %+v", seq, *f, *l)
				}
			}
			if !reflect.DeepEqual(legacy.Kind, fused.Kind) {
				t.Error("Kind differs")
			}
			if !reflect.DeepEqual(legacy.Candidate, fused.Candidate) {
				t.Error("Candidate differs")
			}
			if !reflect.DeepEqual(legacy.EverRead, fused.EverRead) {
				t.Error("EverRead differs")
			}
			if !reflect.DeepEqual(legacy.Resolve, fused.Resolve) {
				t.Error("Resolve differs")
			}
			if legacy.Candidates() != fused.Candidates() {
				t.Errorf("Candidates() = %d fused, %d legacy",
					fused.Candidates(), legacy.Candidates())
			}
			ls, fs := legacy.Summarize(legacyTr, nil), fused.Summarize(fusedTr, nil)
			if ls != fs {
				t.Errorf("summaries differ: fused %+v, legacy %+v", fs, ls)
			}
		})
	}
}

// TestFusedPipelineStatsMatchLegacy simulates the timing model over both
// analysis paths (with elimination and the trained predictor on, so the
// pending-update and eliminated-store machinery is exercised) and requires
// identical statistics.
func TestFusedPipelineStatsMatchLegacy(t *testing.T) {
	const budget = 60_000
	cfgElim := pipeline.ContendedConfig()
	cfgElim.Elim = true
	cfgOracle := pipeline.ContendedConfig()
	cfgOracle.Elim = true
	cfgOracle.OracleElim = true
	for _, prof := range workload.Suite()[:4] {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			raw := collectRaw(t, prof, budget)

			legacyTr := cloneTrace(raw)
			if err := legacyTr.Link(); err != nil {
				t.Fatal(err)
			}
			legacy, err := deadness.Analyze(legacyTr)
			if err != nil {
				t.Fatal(err)
			}
			fusedTr := cloneTrace(raw)
			fused, err := deadness.LinkAndAnalyze(fusedTr)
			if err != nil {
				t.Fatal(err)
			}

			for _, cfg := range []pipeline.Config{cfgElim, cfgOracle} {
				ls, err := pipeline.Run(legacyTr, legacy, cfg)
				if err != nil {
					t.Fatal(err)
				}
				fs, err := pipeline.Run(fusedTr, fused, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ls, fs) {
					t.Errorf("stats differ:\nfused  %+v\nlegacy %+v", fs, ls)
				}
			}
		})
	}
}
