// Golden-equivalence guard for the columnar trace substrate. The chunked
// SoA store, the fused deadness.LinkAndAnalyze pass, and the streaming
// emulate→analyze overlap must all reproduce, byte for byte, what a plain
// slice-of-records implementation computes — producer links, every
// Analysis fact, and the pipeline statistics simulated on top — across the
// full workload suite and across chunk-boundary shapes. refLink/refAnalyze
// below are the seed's []Record implementation kept verbatim as the
// reference; the storage layout and the pass schedule change, never the
// results.
package repro_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/deadness"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

// refAnalysis mirrors deadness.Analysis for the reference path.
type refAnalysis struct {
	Kind       []deadness.Kind
	Candidate  []bool
	EverRead   []bool
	Resolve    []int32
	Ineff      []deadness.IneffKind
	Candidates int
}

// refIneff is the reference reimplementation of the ineffectuality
// classification policy: purely record-local, driven by the emulator's
// hint bits. Kept verbatim as the seed semantics — silent stores only on
// stores, result-equality only on non-control non-load register writers,
// and an equality bit counts only if the op actually reads that source.
func refIneff(r *trace.Record) deadness.IneffKind {
	h := r.Ineff
	if h == 0 {
		return deadness.IneffNone
	}
	if r.Op.IsStore() {
		if h&trace.HintSilentStore != 0 {
			return deadness.SilentStore
		}
		return deadness.IneffNone
	}
	if !r.Op.HasDest() || r.Op.IsControl() || r.Op.IsLoad() || r.Rd == isa.RZero {
		return deadness.IneffNone
	}
	eq := uint8(0)
	if r.Op.ReadsRs1() {
		eq |= trace.HintResultEqRs1
	}
	if r.Op.ReadsRs2() {
		eq |= trace.HintResultEqRs2
	}
	if h&eq != 0 {
		return deadness.TrivialOp
	}
	return deadness.IneffNone
}

// refLink fills producer fields exactly as the seed's slice-based
// trace.Link did. The byte-granular WriterMap is shared with the real
// implementation; it is pinned separately by its own randomized reference
// test in internal/trace.
func refLink(recs []trace.Record) error {
	var regWriter [isa.NumRegs]int32
	for i := range regWriter {
		regWriter[i] = trace.NoProducer
	}
	memWriter := trace.NewWriterMap()
	defer memWriter.Reset()

	for seq := range recs {
		r := &recs[seq]
		r.Src1, r.Src2 = trace.NoProducer, trace.NoProducer
		r.NumMemSrcs = 0
		if r.Op.ReadsRs1() && r.Rs1 != isa.RZero {
			r.Src1 = regWriter[r.Rs1]
		}
		if r.Op.ReadsRs2() && r.Rs2 != isa.RZero {
			r.Src2 = regWriter[r.Rs2]
		}
		if r.Op.IsMem() {
			if r.Width == 0 || int(r.Width) != r.Op.MemWidth() {
				return errors.New("ref: bad memory width")
			}
		}
		if r.Op.IsLoad() {
			memWriter.LoadProducers(r)
		}
		if r.Op.IsStore() {
			memWriter.Claim(r.Addr, int(r.Width), int32(seq))
		}
		if r.HasResult() {
			regWriter[r.Rd] = int32(seq)
		}
	}
	return nil
}

func refIsRoot(op isa.Op) bool {
	return op.IsControl() || op == isa.OUT || op == isa.HALT
}

// refAnalyze runs the seed's two-pass oracle over linked records.
func refAnalyze(recs []trace.Record) *refAnalysis {
	n := len(recs)
	a := &refAnalysis{
		Kind:      make([]deadness.Kind, n),
		Candidate: make([]bool, n),
		EverRead:  make([]bool, n),
		Resolve:   make([]int32, n),
		Ineff:     make([]deadness.IneffKind, n),
	}
	for i := range recs {
		a.Ineff[i] = refIneff(&recs[i])
	}
	for i := range a.Resolve {
		a.Resolve[i] = int32(n)
	}
	markRead := func(producer, reader int32) {
		if producer != trace.NoProducer {
			a.EverRead[producer] = true
			if a.Resolve[producer] == int32(n) {
				a.Resolve[producer] = reader
			}
		}
	}

	var lastRegWriter [isa.NumRegs]int32
	for i := range lastRegWriter {
		lastRegWriter[i] = trace.NoProducer
	}
	memWriter := trace.NewWriterMap()
	defer memWriter.Reset()
	var prevBuf []int32
	for seq := range recs {
		r := &recs[seq]
		markRead(r.Src1, int32(seq))
		markRead(r.Src2, int32(seq))
		for _, s := range r.MemProducers() {
			markRead(s, int32(seq))
		}
		if r.Op.IsStore() {
			a.Candidate[seq] = true
			prevBuf = memWriter.Overwrite(r.Addr, int(r.Width), int32(seq), prevBuf[:0])
			for _, prev := range prevBuf {
				if a.Resolve[prev] == int32(n) {
					a.Resolve[prev] = int32(seq)
				}
			}
		}
		if r.HasResult() {
			if !r.Op.IsControl() {
				a.Candidate[seq] = true
			}
			if prev := lastRegWriter[r.Rd]; prev != trace.NoProducer && a.Resolve[prev] == int32(n) {
				a.Resolve[prev] = int32(seq)
			}
			lastRegWriter[r.Rd] = int32(seq)
		}
	}

	truncated := n > 0 && recs[n-1].Op != isa.HALT
	useful := make([]bool, n)
	mark := func(producer int32) {
		if producer != trace.NoProducer {
			useful[producer] = true
		}
	}
	for seq := n - 1; seq >= 0; seq-- {
		r := &recs[seq]
		unresolved := truncated && a.Candidate[seq] && a.Resolve[seq] == int32(n)
		if !useful[seq] && !refIsRoot(r.Op) && !unresolved {
			continue
		}
		useful[seq] = true
		mark(r.Src1)
		mark(r.Src2)
		for _, s := range r.MemProducers() {
			mark(s)
		}
	}
	for seq := range recs {
		switch {
		case !a.Candidate[seq], useful[seq]:
			a.Kind[seq] = deadness.Live
		case a.EverRead[seq]:
			a.Kind[seq] = deadness.Transitive
		default:
			a.Kind[seq] = deadness.FirstLevel
		}
		if a.Candidate[seq] {
			a.Candidates++
		}
	}
	return a
}

// checkAgainstRef requires a columnar trace + analysis to match the
// reference []Record implementation exactly.
func checkAgainstRef(t *testing.T, tag string, tr *trace.Trace, a *deadness.Analysis, linked []trace.Record, ref *refAnalysis) {
	t.Helper()
	if !tr.Linked {
		t.Errorf("%s: trace not marked linked", tag)
	}
	got := tr.Records()
	if len(got) != len(linked) {
		t.Fatalf("%s: records differ in length: %d vs %d", tag, len(got), len(linked))
	}
	for seq := range linked {
		if got[seq] != linked[seq] {
			t.Fatalf("%s: seq %d: record %+v, reference %+v", tag, seq, got[seq], linked[seq])
		}
	}
	if !reflect.DeepEqual(a.Kind, ref.Kind) {
		t.Errorf("%s: Kind differs", tag)
	}
	if !reflect.DeepEqual(a.Candidate, ref.Candidate) {
		t.Errorf("%s: Candidate differs", tag)
	}
	if !reflect.DeepEqual(a.EverRead, ref.EverRead) {
		t.Errorf("%s: EverRead differs", tag)
	}
	if !reflect.DeepEqual(a.Resolve, ref.Resolve) {
		t.Errorf("%s: Resolve differs", tag)
	}
	if !reflect.DeepEqual(a.Ineff, ref.Ineff) {
		t.Errorf("%s: Ineff differs", tag)
	}
	if a.Candidates() != ref.Candidates {
		t.Errorf("%s: Candidates() = %d, reference %d", tag, a.Candidates(), ref.Candidates)
	}
}

// collectRaw emulates a suite benchmark into both a columnar trace and a
// plain record slice from the same run (the sink copies before pushing).
func collectRaw(t *testing.T, prof workload.Profile, budget int) (*trace.Trace, []trace.Record) {
	t.Helper()
	prog, _, err := prof.Compile(nil)
	if err != nil {
		t.Fatalf("%s: compile: %v", prof.Name, err)
	}
	m := emu.New(prog)
	tr := &trace.Trace{}
	var recs []trace.Record
	sink := func(r *trace.Record) {
		recs = append(recs, *r)
		tr.Push(r)
	}
	if err := m.Run(budget, sink); err != nil && !errors.Is(err, emu.ErrBudget) {
		t.Fatalf("%s: run: %v", prof.Name, err)
	}
	return tr, recs
}

func TestColumnarAnalysisMatchesReference(t *testing.T) {
	const budget = 120_000
	for _, prof := range workload.Suite() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			raw, recs := collectRaw(t, prof, budget)
			if err := refLink(recs); err != nil {
				t.Fatal(err)
			}
			ref := refAnalyze(recs)

			// Legacy two-pass path: Link, then Analyze.
			legacyTr := raw.Clone()
			if err := legacyTr.Link(); err != nil {
				t.Fatal(err)
			}
			legacy, err := deadness.Analyze(legacyTr)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstRef(t, "legacy", legacyTr, legacy, recs, ref)

			// Fused single-pass path over the raw trace.
			fusedTr := raw.Clone()
			fused, err := deadness.LinkAndAnalyze(fusedTr)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstRef(t, "fused", fusedTr, fused, recs, ref)

			// Streaming path: re-emulate with the analyzer running
			// concurrently one chunk behind the emulator.
			prog, _, err := prof.Compile(nil)
			if err != nil {
				t.Fatal(err)
			}
			streamTr, stream, _, err := emu.CollectAnalyzed(prog, budget)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstRef(t, "stream", streamTr, stream, recs, ref)

			ls, fs := legacy.Summarize(legacyTr, nil), fused.Summarize(fusedTr, nil)
			ss := stream.Summarize(streamTr, nil)
			if ls != fs || ls != ss {
				t.Errorf("summaries differ: legacy %+v, fused %+v, stream %+v", ls, fs, ss)
			}
		})
	}
}

// TestFusedPipelineStatsMatchLegacy simulates the timing model over both
// analysis paths (with elimination and the trained predictor on, so the
// pending-update and eliminated-store machinery is exercised) and requires
// identical statistics.
func TestFusedPipelineStatsMatchLegacy(t *testing.T) {
	const budget = 60_000
	cfgElim := pipeline.ContendedConfig()
	cfgElim.Elim = true
	cfgOracle := pipeline.ContendedConfig()
	cfgOracle.Elim = true
	cfgOracle.OracleElim = true
	for _, prof := range workload.Suite()[:4] {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			raw, _ := collectRaw(t, prof, budget)

			legacyTr := raw.Clone()
			if err := legacyTr.Link(); err != nil {
				t.Fatal(err)
			}
			legacy, err := deadness.Analyze(legacyTr)
			if err != nil {
				t.Fatal(err)
			}
			fusedTr := raw.Clone()
			fused, err := deadness.LinkAndAnalyze(fusedTr)
			if err != nil {
				t.Fatal(err)
			}

			for _, cfg := range []pipeline.Config{cfgElim, cfgOracle} {
				ls, err := pipeline.Run(legacyTr, legacy, cfg)
				if err != nil {
					t.Fatal(err)
				}
				fs, err := pipeline.Run(fusedTr, fused, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ls, fs) {
					t.Errorf("stats differ:\nfused  %+v\nlegacy %+v", fs, ls)
				}
			}
		})
	}
}

// synthRecords builds a deterministic synthetic trace of exactly n records
// with register and memory producer chains that span chunk boundaries:
// ALU writes, stores and loads over a small address pool (including
// unaligned page-straddling accesses), and periodic branches. A positive
// haltTail replaces the final record with HALT so both the truncated and
// the cleanly-terminated reverse passes are exercised.
func synthRecords(n int, halted bool) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		pc := int32(i % 61)
		rd := isa.Reg(1 + i%7)
		rs1 := isa.Reg(1 + (i+3)%7)
		rs2 := isa.Reg(1 + (i+5)%7)
		switch i % 11 {
		case 0, 1, 2, 3:
			recs[i] = trace.Record{PC: pc, Op: isa.ADD, Rd: rd, Rs1: rs1, Rs2: rs2}
			// Sprinkle result-equality hints so the Ineff column is
			// non-vacuous across every chunk shape (only bits the
			// emulator could have produced for the op).
			if i%5 == 0 {
				recs[i].Ineff |= trace.HintResultEqRs1
			}
			if i%7 == 0 {
				recs[i].Ineff |= trace.HintResultEqRs2
			}
		case 4, 5:
			recs[i] = trace.Record{PC: pc, Op: isa.ADDI, Rd: rd, Rs1: rs1}
			if i%4 == 0 {
				recs[i].Ineff = trace.HintResultEqRs1
			}
		case 6:
			addr := uint64(0x1000 + 8*(i%97) + i%3) // sometimes unaligned
			recs[i] = trace.Record{PC: pc, Op: isa.SD, Rs1: rs1, Rs2: rs2, Addr: addr, Width: 8}
			if i%3 == 0 {
				recs[i].Ineff = trace.HintSilentStore
			}
		case 7:
			addr := uint64(0x1000 + 8*((i+55)%97) + i%3)
			recs[i] = trace.Record{PC: pc, Op: isa.LD, Rd: rd, Rs1: rs1, Addr: addr, Width: 8}
		case 8:
			addr := uint64(0x1000 + 4*(i%193))
			recs[i] = trace.Record{PC: pc, Op: isa.SW, Rs1: rs1, Rs2: rs2, Addr: addr, Width: 4}
			if i%2 == 0 {
				recs[i].Ineff = trace.HintSilentStore
			}
		case 9:
			addr := uint64(0x1000 + 4*((i+31)%193))
			recs[i] = trace.Record{PC: pc, Op: isa.LW, Rd: rd, Rs1: rs1, Addr: addr, Width: 4}
		case 10:
			recs[i] = trace.Record{PC: pc, Op: isa.BNE, Rs1: rs1, Rs2: rs2, Taken: i%2 == 0}
		}
		recs[i].NextPC = int32((i + 1) % 61)
	}
	if halted && n > 0 {
		recs[n-1] = trace.Record{PC: 60, Op: isa.HALT, NextPC: 60}
	}
	return recs
}

// TestChunkBoundaryShapes pins the columnar paths against the reference on
// trace lengths straddling every chunk-layout edge: empty, single record,
// one partially-filled chunk, exactly one chunk, one-past-a-chunk, and a
// multi-chunk length that is not a multiple of the chunk size.
func TestChunkBoundaryShapes(t *testing.T) {
	const cs = trace.ChunkSize
	lengths := []int{0, 1, 2, cs - 1, cs, cs + 1, 2*cs + cs/3}
	for _, n := range lengths {
		for _, halted := range []bool{false, true} {
			if n == 0 && halted {
				continue
			}
			name := "trunc"
			if halted {
				name = "halt"
			}
			t.Run(name+"/"+itoa(n), func(t *testing.T) {
				recs := synthRecords(n, halted)
				tr := trace.FromRecords(recs)
				if tr.Len() != n {
					t.Fatalf("Len = %d, want %d", tr.Len(), n)
				}
				wantChunks := 0
				if n > 0 {
					wantChunks = (n-1)/cs + 1
				}
				if tr.NumChunks() != wantChunks {
					t.Fatalf("NumChunks = %d, want %d", tr.NumChunks(), wantChunks)
				}

				ref := append([]trace.Record(nil), recs...)
				if err := refLink(ref); err != nil {
					t.Fatal(err)
				}
				refA := refAnalyze(ref)

				fused, err := deadness.LinkAndAnalyze(tr)
				if err != nil {
					t.Fatal(err)
				}
				checkAgainstRef(t, "fused", tr, fused, ref, refA)

				// Per-record accessors agree with the bulk view at every
				// boundary position.
				for _, seq := range []int{0, cs - 1, cs, n - 1} {
					if seq < 0 || seq >= n {
						continue
					}
					if got := tr.At(seq); got != ref[seq] {
						t.Errorf("At(%d) = %+v, want %+v", seq, got, ref[seq])
					}
					if tr.OpAt(seq) != ref[seq].Op || tr.PCAt(seq) != ref[seq].PC {
						t.Errorf("OpAt/PCAt(%d) mismatch", seq)
					}
				}
			})
		}
	}
}

// TestAppendRangeAcrossChunks pins windowed sub-trace extraction (the
// scratch-trace path used by the window-bias experiment) against slicing
// the reference records, for windows that straddle chunk boundaries.
func TestAppendRangeAcrossChunks(t *testing.T) {
	const cs = trace.ChunkSize
	n := 2*cs + 123
	recs := synthRecords(n, false)
	tr := trace.FromRecords(recs)
	if _, err := deadness.LinkAndAnalyze(tr); err != nil {
		t.Fatal(err)
	}

	sub := trace.NewWithCapacity(cs + 7)
	defer sub.Release()
	windows := [][2]int{{0, 5}, {cs - 3, cs + 4}, {cs, 2 * cs}, {2*cs - 1, n}, {0, n}}
	for _, w := range windows {
		start, end := w[0], w[1]
		sub.Reset()
		sub.AppendRange(tr, start, end)
		if sub.Len() != end-start {
			t.Fatalf("window [%d,%d): Len = %d", start, end, sub.Len())
		}
		ref := append([]trace.Record(nil), recs[start:end]...)
		if err := refLink(ref); err != nil {
			t.Fatal(err)
		}
		refA := refAnalyze(ref)
		a, err := deadness.LinkAndAnalyze(sub)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstRef(t, "window", sub, a, ref, refA)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
